"""LULESH: unstructured Lagrangian hydrodynamics proxy (Figures 16-19).

The paper compares MPI and Charm++ implementations:

* **MPI** — after a setup phase, every iteration runs *three* neighbour-
  exchange phases (force, position, gradient) followed by an allreduce of
  the time-step constraint.
* **Charm++** — after setup, every iteration runs *two* ghost-exchange
  phases (with mirrored communication patterns) followed by the allreduce
  through the reduction managers.

Both decompose a 3D domain into blocks with face neighbours.  The Charm++
variant is also the workload of the scaling study (Figures 18/19), so its
parameters accept large chare counts and iteration counts.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Optional, Tuple

from repro.sim.charm import Chare, CharmRuntime, EntrySpec, TracingOptions, WhenCounter
from repro.sim.mpi import MpiSimulation, RankApi
from repro.sim.network import LatencyModel, UniformLatency
from repro.sim.noise import NoiseModel
from repro.trace.model import Trace


def _grid_shape(count: int) -> Tuple[int, int, int]:
    """Near-cubic 3D factorization of ``count`` (exact)."""
    best = (count, 1, 1)
    best_score = float("inf")
    for a in range(1, int(round(count ** (1 / 3))) + 2):
        if count % a:
            continue
        rest = count // a
        for b in range(a, int(math.isqrt(rest)) + 1):
            if rest % b:
                continue
            c = rest // b
            score = (c - a) + (c - b)
            if score < best_score:
                best_score = score
                best = (a, b, c)
    return best


def _face_neighbors(index: Tuple[int, int, int], shape: Tuple[int, int, int]):
    x, y, z = index
    sx, sy, sz = shape
    for dx, dy, dz in ((-1, 0, 0), (1, 0, 0), (0, -1, 0), (0, 1, 0),
                       (0, 0, -1), (0, 0, 1)):
        nx, ny, nz = x + dx, y + dy, z + dz
        if 0 <= nx < sx and 0 <= ny < sy and 0 <= nz < sz:
            yield (nx, ny, nz)


# ---------------------------------------------------------------------------
# Charm++ implementation
# ---------------------------------------------------------------------------
class LuleshChare(Chare):
    """One 3D block of the Charm++ LULESH decomposition."""

    ENTRIES = {
        "begin_iteration": EntrySpec(is_sdag_serial=True, sdag_ordinal=0),
        "recv_force": EntrySpec(is_sdag_serial=True, sdag_ordinal=1),
        "stress": EntrySpec(is_sdag_serial=True, sdag_ordinal=2),
        "recv_position": EntrySpec(is_sdag_serial=True, sdag_ordinal=3),
        "dt_calc": EntrySpec(is_sdag_serial=True, sdag_ordinal=4),
        "setup_exchange": EntrySpec(is_sdag_serial=True, sdag_ordinal=5),
        "recv_setup": EntrySpec(is_sdag_serial=True, sdag_ordinal=6),
    }

    def init(self, iterations: int = 2,
             ghost_bytes: float = 2048.0, compute_cost: float = 120.0,
             **_ignored) -> None:
        self.iterations = iterations
        self.ghost_bytes = ghost_bytes
        self.compute_cost = compute_cost
        self.iteration = 0
        self._neighbors: List = []
        self._setup_when: Optional[WhenCounter] = None
        self._force_when: Optional[WhenCounter] = None
        self._pos_when: Optional[WhenCounter] = None

    def _resolve_neighbors(self):
        self._neighbors = [
            self.array[idx] for idx in _face_neighbors(self.index, self.array.shape)
        ]
        degree = len(self._neighbors)
        self._setup_when = WhenCounter(degree)
        self._force_when = WhenCounter(degree)
        self._pos_when = WhenCounter(degree)

    # -- setup phase -------------------------------------------------------
    def start(self, _msg) -> None:
        """Problem setup: initialize state and exchange domain metadata."""
        self._resolve_neighbors()
        self.chain("setup_exchange", None)

    def setup_exchange(self, _msg) -> None:
        self.compute(self.compute_cost * 0.5)
        for nb in self._neighbors:
            self.send(nb, "recv_setup", None, size=self.ghost_bytes)

    def recv_setup(self, _msg) -> None:
        if self._setup_when.deposit("setup"):
            self.contribute(0.0, "max", ("broadcast", "setup_done"))

    def setup_done(self, _value: float) -> None:
        """Setup reduction client: begin the first iteration."""
        if self.iterations > 0:
            self.chain("begin_iteration", None)

    # -- iteration ---------------------------------------------------------
    def begin_iteration(self, _msg) -> None:
        """Serial 0: compute nodal forces, exchange force ghosts."""
        self.compute(self.compute_cost)
        for nb in self._neighbors:
            self.send(nb, "recv_force", self.iteration, size=self.ghost_bytes)

    def recv_force(self, iteration: int) -> None:
        if self._force_when.deposit(iteration):
            self.chain("stress", iteration)

    def stress(self, _iteration: int) -> None:
        """Serial 2: stress/hourglass update, exchange position ghosts.

        The communication pattern mirrors the force exchange (reversed
        neighbour order), matching the paper's "mirrored" description.
        """
        self.compute(self.compute_cost)
        for nb in reversed(self._neighbors):
            self.send(nb, "recv_position", self.iteration, size=self.ghost_bytes)

    def recv_position(self, iteration: int) -> None:
        if self._pos_when.deposit(iteration):
            self.chain("dt_calc", iteration)

    def dt_calc(self, _iteration: int) -> None:
        """Serial 4: local time-step constraint into a min-reduction."""
        self.compute(self.compute_cost * 0.4)
        dt = 1.0 / (2 + self.iteration)
        self.contribute(dt, "min", ("broadcast", "resume"))

    def resume(self, _value: float) -> None:
        """dt reduction client: advance to the next iteration (or stop)."""
        self.iteration += 1
        if self.iteration < self.iterations:
            self.chain("begin_iteration", None)


class LuleshMain(Chare):
    """Main chare: broadcasts the start signal."""

    def init(self, array=None, **_ignored) -> None:
        self._array = array

    def begin(self, _msg) -> None:
        self.compute(5.0)
        self._array.broadcast_from(self._ctx(), "start", None, size=32.0)


def run_charm(
    chares: int = 8,
    pes: int = 2,
    iterations: int = 2,
    seed: int = 0,
    ghost_bytes: float = 2048.0,
    compute_cost: float = 120.0,
    latency: Optional[LatencyModel] = None,
    noise: Optional[NoiseModel] = None,
    tracing: Optional[TracingOptions] = None,
) -> Trace:
    """Simulate Charm++ LULESH; ``chares`` must factor into a 3D grid."""
    shape = _grid_shape(chares)
    rt = CharmRuntime(
        num_pes=pes,
        latency=latency or UniformLatency(seed=seed, jitter=0.3),
        noise=noise,
        tracing=tracing,
        metadata={"app": "lulesh", "model": "charm", "chares": chares,
                  "iterations": iterations},
    )
    arr = rt.create_array(
        "Domain", LuleshChare, shape=shape, iterations=iterations,
        ghost_bytes=ghost_bytes, compute_cost=compute_cost,
    )
    main = rt.create_chare("Main", LuleshMain, pe=0, array=arr)
    rt.seed(main.chare, "begin")
    rt.run()
    return rt.finish()


# ---------------------------------------------------------------------------
# MPI implementation
# ---------------------------------------------------------------------------
def _mpi_rank_fn(shape: Tuple[int, int, int], iterations: int,
                 ghost_bytes: float, compute_cost: float):
    sx, sy, sz = shape

    def coords(rank: int) -> Tuple[int, int, int]:
        return (rank // (sy * sz), (rank // sz) % sy, rank % sz)

    def rank_of(idx: Tuple[int, int, int]) -> int:
        return idx[0] * sy * sz + idx[1] * sz + idx[2]

    def body(rank: int, comm: RankApi) -> Iterator:
        me = coords(rank)
        nbrs = [rank_of(n) for n in _face_neighbors(me, shape)]
        # Setup phase: initial exchange + readiness allreduce.
        yield comm.compute(compute_cost * 0.5)
        for nb in nbrs:
            yield comm.send(nb, tag=90_000, size=ghost_bytes)
        for nb in nbrs:
            yield comm.recv(nb, tag=90_000)
        yield comm.allreduce(0.0, op="max")
        for it in range(iterations):
            # Three exchange phases per iteration (force, position,
            # gradient), then the dt allreduce — the Figure 16 MPI shape.
            # Like real LULESH, receives are posted up front (irecv) and
            # completed with a Waitall after the sends go out.
            for phase in range(3):
                tag = it * 10 + phase
                yield comm.compute(compute_cost)
                requests = []
                for nb in nbrs:
                    requests.append((yield comm.irecv(nb, tag=tag)))
                for nb in nbrs:
                    yield comm.isend(nb, tag=tag, size=ghost_bytes)
                yield comm.waitall(requests)
            yield comm.compute(compute_cost * 0.4)
            yield comm.allreduce(1.0 / (2 + it), op="min")

    return body


def run_mpi(
    ranks: int = 8,
    iterations: int = 2,
    seed: int = 0,
    ghost_bytes: float = 2048.0,
    compute_cost: float = 120.0,
    latency: Optional[LatencyModel] = None,
    noise: Optional[NoiseModel] = None,
) -> Trace:
    """Simulate MPI LULESH; ``ranks`` must factor into a 3D grid."""
    shape = _grid_shape(ranks)
    sim = MpiSimulation(
        num_ranks=ranks,
        latency=latency or UniformLatency(seed=seed, jitter=0.3),
        noise=noise,
        metadata={"app": "lulesh", "chares": ranks, "iterations": iterations},
    )
    sim.run(_mpi_rank_fn(shape, iterations, ghost_bytes, compute_cost))
    return sim.finish()
