"""PDES mini-app: event-driven simulation with a completion detector.

Reproduces the Figure 24 scenario: application chares exchange simulation
event messages (the *mustard* phase); when a chare's local work drains it
notifies a per-PE completion-detector runtime chare — but that call is
**not traced** (it passes through the runtime), so the analysis has no
dependency ordering the detector phase after the simulation phase and
places both concurrently in logical time.

Set ``traced_completion=True`` to record the calls and observe the phases
ordering correctly — the paper's argument for richer TBR tracing
(Section 7.1).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.sim.charm import Chare, CharmRuntime, EntrySpec, TracingOptions
from repro.sim.network import LatencyModel, UniformLatency
from repro.sim.noise import NoiseModel
from repro.trace.model import Trace


class PdesChare(Chare):
    """A logical process of the discrete-event simulation."""

    ENTRIES = {
        "sim_event": EntrySpec(is_sdag_serial=True, sdag_ordinal=0),
    }

    def init(self, rng: Optional[random.Random] = None, fanout: float = 0.9,
             max_hops: int = 6, event_cost: float = 12.0,
             detectors=None, traced_completion: bool = False,
             **_ignored) -> None:
        self.rng = rng or random.Random(0)
        self.fanout = fanout
        self.max_hops = max_hops
        self.event_cost = event_cost
        self.detectors = detectors
        self.traced_completion = traced_completion
        self.outstanding = 0

    def start(self, hops: int) -> None:
        self.outstanding += 1
        self.sim_event(hops)

    def sim_event(self, hops: int) -> None:
        """Process one simulation event, maybe scheduling successors."""
        self.compute(self.event_cost * (0.5 + self.rng.random()))
        if hops > 0:
            n = len(self.array)
            count = 1 + (1 if self.rng.random() < self.fanout - 1.0 else 0)
            for _ in range(count):
                if self.rng.random() < self.fanout:
                    target_linear = self.rng.randrange(n)
                    target = self.array[self._linear_to_index(target_linear)]
                    self.send(target, "sim_event", hops - 1, size=48.0)
        # Local work drained: notify the completion detector.  The call is
        # runtime-internal control flow; stock tracing does not record it.
        detector = self.detectors[self.pe]
        self.send(detector, "notify", None, size=8.0,
                  traced=self.traced_completion)

    def _linear_to_index(self, linear: int) -> Tuple[int, ...]:
        return (linear,)


class CompletionDetector(Chare):
    """Per-PE runtime chare counting quiescence notifications.

    Notifications stream in from local chares; detectors aggregate counts
    up a spanning tree over the PEs.  In the real mini-app this loops
    until global counts stabilize; one aggregation wave is enough to
    reproduce the trace structure.
    """

    IS_RUNTIME = True

    def init(self, expected_local: int = 0, detectors=None, num_pes: int = 1,
             **_ignored) -> None:
        self.expected_local = expected_local
        self.detectors = detectors
        self.num_pes = num_pes
        self.local_count = 0
        self.child_count = 0
        self._done = False

    def _n_children(self) -> int:
        return sum(
            1 for c in (2 * self.pe + 1, 2 * self.pe + 2) if c < self.num_pes
        )

    def notify(self, _msg) -> None:
        """A local chare reports its work drained."""
        self.compute(1.0)
        self.local_count += 1
        self._check()

    def child_done(self, count: int) -> None:
        """A child detector in the PE tree reports its subtree drained."""
        self.compute(1.5)
        self.child_count += 1
        self._check()

    def _check(self) -> None:
        if self._done:
            return
        if self.local_count >= self.expected_local and self.child_count >= self._n_children():
            self._done = True
            if self.pe > 0:
                parent = self.detectors[(self.pe - 1) // 2]
                # Inter-PE detector messages are explicit and traced.
                self.send(parent, "child_done", self.local_count, size=16.0)


def run(
    chares: int = 16,
    pes: int = 4,
    seed: int = 0,
    max_hops: int = 6,
    event_cost: float = 12.0,
    traced_completion: bool = False,
    latency: Optional[LatencyModel] = None,
    noise: Optional[NoiseModel] = None,
    tracing: Optional[TracingOptions] = None,
) -> Trace:
    """Simulate the PDES mini-app (paper setting: 16 chares, 4 PEs).

    Each chare's detector notification count is data dependent, so the
    detectors' ``expected_local`` is discovered by a dry run of the RNG —
    instead we simply expect one notification per *seed event chain* that
    dies on the PE, which equals the number of sim_event executions there;
    to keep the model simple the detector expects one notification per
    local chare seed and later notifications are absorbed harmlessly.
    """
    rng = random.Random(seed)
    rt = CharmRuntime(
        num_pes=pes,
        latency=latency or UniformLatency(seed=seed, jitter=0.5),
        noise=noise,
        tracing=tracing,
        metadata={"app": "pdes", "model": "charm", "chares": chares},
    )
    detectors: List[Chare] = []
    arr = rt.create_array(
        "LP", PdesChare, shape=(chares,),
        rng=random.Random(seed + 1), max_hops=max_hops, event_cost=event_cost,
        detectors=detectors, traced_completion=traced_completion,
    )
    per_pe: Dict[int, int] = {}
    for chare in arr:
        per_pe[chare.pe] = per_pe.get(chare.pe, 0) + 1
    for pe in range(pes):
        handle = rt.create_chare(
            f"CompletionDetector[{pe}]", CompletionDetector, pe=pe,
            expected_local=per_pe.get(pe, 0), detectors=detectors, num_pes=pes,
        )
        detectors.append(handle.chare)
    for chare in arr:
        rt.seed(chare, "start", max_hops)
    rt.run()
    return rt.finish()
