"""Distributed merge-tree construction (MPI), Figure 10's workload.

Each process extracts a local merge tree from its data block (compute cost
is data dependent, so processes finish at very different times).  Trees
are then combined up a binomial tree: a process with children
``rank + 2^k`` waits for each child's tree with a Waitany-style receive
and merges them *in arrival order* — the "early version of a merge tree
algorithm" behaviour the paper studies — then sends its combined tree to
its parent.

Because merges happen in arrival order, data-dependent load imbalance
scrambles the receive sequence: a deep child subtree can finish before a
shallow one, so a logically-late message is received (and traced) before a
logically-early one.  Under physical-time stepping, the early message is
then forced to a much later step than its peers; the Section 3.2.1
reordering restores the level-by-level parallel structure (Figure 10).
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional

from repro.sim.mpi import MpiSimulation, RankApi
from repro.sim.network import LatencyModel, UniformLatency
from repro.sim.noise import NoiseModel
from repro.trace.model import Trace


def children_of(rank: int, ranks: int) -> List[int]:
    """Binomial-tree children of ``rank`` (e.g. 0 -> [1, 2, 4, 8, ...])."""
    out = []
    k = 0
    while True:
        bit = 1 << k
        if rank & (bit - 1) or rank + bit >= ranks:
            break
        if rank & bit:
            break
        out.append(rank + bit)
        k += 1
    return [c for c in out if c < ranks]


def parent_of(rank: int) -> int:
    """Binomial-tree parent of ``rank`` (clear its lowest set bit)."""
    return rank & (rank - 1) if rank else -1


def run(
    ranks: int = 64,
    seed: int = 0,
    base_cost: float = 40.0,
    imbalance: float = 3.0,
    merge_cost: float = 12.0,
    tree_bytes: float = 4096.0,
    latency: Optional[LatencyModel] = None,
    noise: Optional[NoiseModel] = None,
) -> Trace:
    """Simulate the merge-tree algorithm; ``ranks`` must be a power of two.

    ``imbalance`` scales the spread of the data-dependent local compute:
    local cost is ``base_cost * (1 + imbalance * u)`` with ``u`` uniform
    per rank.  The paper's trace used 1,024 processes.
    """
    if ranks < 2 or ranks & (ranks - 1):
        raise ValueError("ranks must be a power of two >= 2")
    rng = random.Random(seed)
    local_cost = [base_cost * (1.0 + imbalance * rng.random()) for _ in range(ranks)]

    def body(rank: int, comm: RankApi) -> Iterator:
        yield comm.compute(local_cost[rank])
        kids = children_of(rank, ranks)
        merged = 1
        if kids:
            # Waitany loop: children's trees merge in arrival order.
            received = yield comm.recv_merge(kids, tag=0, cost_per_unit=merge_cost)
            merged += sum(size for _src, size in received)
        if rank:
            yield comm.send(parent_of(rank), tag=0, size=tree_bytes * merged,
                            payload=merged)

    sim = MpiSimulation(
        num_ranks=ranks,
        latency=latency or UniformLatency(seed=seed, jitter=0.5),
        noise=noise,
        metadata={"app": "mergetree", "ranks": ranks},
    )
    sim.run(body)
    return sim.finish()
