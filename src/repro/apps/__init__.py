"""Proxy applications from the paper's case studies.

Every module exposes ``run(...)`` functions returning a fully indexed
:class:`repro.trace.Trace`:

* :mod:`repro.apps.jacobi2d` — Jacobi heat iteration (the paper's running
  example; Figures 8, 12, 14, 15).
* :mod:`repro.apps.lulesh` — hydrodynamics proxy, Charm++ and MPI
  implementations (Figures 16-19).
* :mod:`repro.apps.lassen` — wavefront-propagation proxy, Charm++ and MPI
  (Figures 20-23).
* :mod:`repro.apps.pdes` — parallel discrete-event simulation mini-app
  with an untraced completion detector (Figure 24).
* :mod:`repro.apps.mergetree` — the MPI merge-tree algorithm whose
  data-dependent imbalance motivates reordering (Figure 10).
* :mod:`repro.apps.nasbt` — a NAS BT-style sweep code (Figure 1).
* :mod:`repro.apps.btsweep` — the same sweeps over-decomposed on a chare
  array (extension workload).
* :mod:`repro.apps.multigrid` — a two-array V-cycle (extension workload
  stressing inter-array phase finding).
* :mod:`repro.apps.sssp` — asynchronous shortest paths terminated by
  quiescence detection (irregular extension workload).
"""

from repro.apps import (
    btsweep,
    jacobi2d,
    lassen,
    lulesh,
    mergetree,
    multigrid,
    nasbt,
    pdes,
    sssp,
)

__all__ = ["jacobi2d", "lulesh", "lassen", "pdes", "mergetree", "nasbt",
           "multigrid", "btsweep", "sssp"]
