"""Two-level multigrid V-cycle on a pair of chare arrays.

An extension workload beyond the paper's case studies: two *different*
chare arrays interact — a fine grid smooths and restricts its residual to
a coarse grid (4 fine blocks per coarse block), the coarse grid solves and
prolongates the correction back, and the fine grid applies it and joins a
residual reduction.  Per V-cycle the recovered logical structure shows the
nested pattern

    fine smooth/exchange -> restriction -> coarse exchange/solve ->
    prolongation -> correction -> allreduce

with the inter-array restriction/prolongation messages gluing the two
arrays' phases together — a good stress test for the phase finding, which
must keep the per-array exchanges separate while ordering them through
the cross-array dependencies.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.sim.charm import Chare, CharmRuntime, EntrySpec, TracingOptions, WhenCounter
from repro.sim.network import LatencyModel, UniformLatency
from repro.sim.noise import NoiseModel
from repro.trace.model import Trace


def _neighbors(array, index: Tuple[int, int]) -> List:
    sx, sy = array.shape
    out = []
    for dx, dy in ((-1, 0), (1, 0), (0, -1), (0, 1)):
        nx, ny = index[0] + dx, index[1] + dy
        if 0 <= nx < sx and 0 <= ny < sy:
            out.append(array[(nx, ny)])
    return out


class FineBlock(Chare):
    """Fine-grid block: smooth, restrict, await correction, reduce."""

    ENTRIES = {
        "smooth": EntrySpec(is_sdag_serial=True, sdag_ordinal=0),
        "recv_ghost": EntrySpec(is_sdag_serial=True, sdag_ordinal=1),
        "restrict_residual": EntrySpec(is_sdag_serial=True, sdag_ordinal=2),
        "recv_correction": EntrySpec(is_sdag_serial=True, sdag_ordinal=3),
        "apply_correction": EntrySpec(is_sdag_serial=True, sdag_ordinal=4),
    }

    def init(self, cycles: int = 2, smooth_cost: float = 40.0,
             ghost_bytes: float = 256.0, coarse=None, **_ignored) -> None:
        self.cycles = cycles
        self.smooth_cost = smooth_cost
        self.ghost_bytes = ghost_bytes
        self.coarse = coarse
        self.cycle = 0
        self._when: Optional[WhenCounter] = None

    def start(self, _msg) -> None:
        self._when = WhenCounter(len(_neighbors(self.array, self.index)))
        self.chain("smooth", None)

    def smooth(self, _msg) -> None:
        """Serial 0: pre-smoothing sweep, then ghost exchange."""
        self.compute(self.smooth_cost)
        for nb in _neighbors(self.array, self.index):
            self.send(nb, "recv_ghost", self.cycle, size=self.ghost_bytes)

    def recv_ghost(self, cycle: int) -> None:
        if self._when.deposit(("ghost", cycle)):
            self.chain("restrict_residual", cycle)

    def restrict_residual(self, cycle: int) -> None:
        """Serial 2: restrict this block's residual to its coarse parent."""
        self.compute(self.smooth_cost * 0.3)
        parent = self.coarse[(self.index[0] // 2, self.index[1] // 2)]
        self.send(parent, "recv_restriction", cycle, size=self.ghost_bytes / 2)

    def recv_correction(self, cycle: int) -> None:
        self.chain("apply_correction", cycle)

    def apply_correction(self, _cycle: int) -> None:
        """Serial 4: apply the coarse correction, contribute the residual."""
        self.compute(self.smooth_cost * 0.5)
        residual = 1.0 / (1 + self.cycle)
        self.contribute(residual, "max", ("broadcast", "resume"))

    def resume(self, _residual: float) -> None:
        self.cycle += 1
        if self.cycle < self.cycles:
            self.chain("smooth", None)


class CoarseBlock(Chare):
    """Coarse-grid block: gather restrictions, solve, prolongate."""

    ENTRIES = {
        "recv_restriction": EntrySpec(is_sdag_serial=True, sdag_ordinal=0),
        "solve": EntrySpec(is_sdag_serial=True, sdag_ordinal=1),
        "recv_cghost": EntrySpec(is_sdag_serial=True, sdag_ordinal=2),
        "prolongate": EntrySpec(is_sdag_serial=True, sdag_ordinal=3),
    }

    def init(self, solve_cost: float = 60.0, ghost_bytes: float = 256.0,
             fine=None, **_ignored) -> None:
        self.solve_cost = solve_cost
        self.ghost_bytes = ghost_bytes
        self.fine = fine
        self._restrict_when = WhenCounter(4)
        self._ghost_when: Optional[WhenCounter] = None

    def recv_restriction(self, cycle: int) -> None:
        """SDAG when: residuals from the four fine children."""
        if self._restrict_when.deposit(cycle):
            self.chain("solve", cycle)

    def solve(self, cycle: int) -> None:
        """Serial 1: coarse relaxation, exchanging coarse ghosts."""
        if self._ghost_when is None:
            self._ghost_when = WhenCounter(
                max(1, len(_neighbors(self.array, self.index)))
            )
        self.compute(self.solve_cost)
        nbrs = _neighbors(self.array, self.index)
        if not nbrs:
            # Single coarse block: no exchange, prolongate directly.
            self.chain("prolongate", cycle)
            return
        for nb in nbrs:
            self.send(nb, "recv_cghost", cycle, size=self.ghost_bytes)

    def recv_cghost(self, cycle: int) -> None:
        if self._ghost_when.deposit(cycle):
            self.chain("prolongate", cycle)

    def prolongate(self, cycle: int) -> None:
        """Serial 3: push corrections back to the four fine children."""
        self.compute(self.solve_cost * 0.4)
        cx, cy = self.index
        for dx in (0, 1):
            for dy in (0, 1):
                child = self.fine[(2 * cx + dx, 2 * cy + dy)]
                self.send(child, "recv_correction", cycle,
                          size=self.ghost_bytes / 2)


class MultigridMain(Chare):
    """Main chare: starts the fine array."""

    def init(self, fine=None, **_ignored) -> None:
        self._fine = fine

    def begin(self, _msg) -> None:
        self.compute(2.0)
        self._fine.broadcast_from(self._ctx(), "start", None, size=16.0)


def run(
    fine: Tuple[int, int] = (4, 4),
    pes: int = 4,
    cycles: int = 2,
    seed: int = 0,
    smooth_cost: float = 40.0,
    solve_cost: float = 60.0,
    latency: Optional[LatencyModel] = None,
    noise: Optional[NoiseModel] = None,
    tracing: Optional[TracingOptions] = None,
) -> Trace:
    """Simulate the two-level V-cycle; fine dimensions must be even."""
    fx, fy = fine
    if fx % 2 or fy % 2:
        raise ValueError("fine grid dimensions must be even")
    rt = CharmRuntime(
        num_pes=pes,
        latency=latency or UniformLatency(seed=seed, jitter=0.3),
        noise=noise,
        tracing=tracing,
        metadata={"app": "multigrid", "model": "charm",
                  "fine": [fx, fy], "cycles": cycles},
    )
    fine_arr = rt.create_array(
        "Fine", FineBlock, shape=(fx, fy), cycles=cycles,
        smooth_cost=smooth_cost,
    )
    coarse_arr = rt.create_array(
        "Coarse", CoarseBlock, shape=(fx // 2, fy // 2),
        solve_cost=solve_cost,
    )
    for block in fine_arr:
        block.coarse = coarse_arr
    for block in coarse_arr:
        block.fine = fine_arr
    main = rt.create_chare("Main", MultigridMain, pe=0, fine=fine_arr)
    rt.seed(main.chare, "begin")
    rt.run()
    return rt.finish()
