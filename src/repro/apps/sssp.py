"""Asynchronous single-source shortest paths (chare-based, QD-terminated).

An *irregular* workload to complement the stencil proxies: the graph is
partitioned over a chare array and distance relaxations travel as
messages.  There is no iteration structure at all — messages beget
messages until no improvement remains — so termination uses the runtime's
quiescence detection, and the recovered logical structure shows one large
data-dependent application phase polled by QD runtime phases (the PDES
scenario of Figure 24, but with the detector dependencies *traced*).

The graph itself comes from networkx (seeded `gnm` plus a path to keep it
connected); the test suite checks the converged distances against
``networkx.single_source_dijkstra_path_length``.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

import networkx as nx

from repro.sim.charm import Chare, CharmRuntime, TracingOptions
from repro.sim.network import LatencyModel, UniformLatency
from repro.sim.noise import NoiseModel
from repro.trace.model import Trace


def make_graph(nodes: int, edges: int, seed: int) -> "nx.Graph":
    """A connected weighted graph: random gnm plus a backbone path."""
    rng = random.Random(seed)
    graph = nx.gnm_random_graph(nodes, edges, seed=seed)
    for i in range(nodes - 1):
        graph.add_edge(i, i + 1)  # backbone keeps it connected
    for u, v in graph.edges:
        graph.edges[u, v]["weight"] = 1 + rng.randrange(9)
    return graph


class GraphPart(Chare):
    """Owns the nodes with ``node % num_parts == index``."""

    RELAX_COST = 2.0

    def init(self, graph=None, num_parts: int = 1, **_ignored) -> None:
        self.graph = graph
        self.num_parts = num_parts
        self.dist: Dict[int, float] = {}

    def owner(self, node: int) -> Chare:
        return self.array[(node % self.num_parts,)]

    def relax(self, payload: Tuple[int, float]) -> None:
        """Process one tentative distance; propagate improvements."""
        node, dist = payload
        best = self.dist.get(node)
        if best is not None and best <= dist:
            return
        self.dist[node] = dist
        self.compute(self.RELAX_COST)
        for neighbor in self.graph[node]:
            weight = self.graph.edges[node, neighbor]["weight"]
            self.send(self.owner(neighbor), "relax",
                      (neighbor, dist + weight), size=16.0)

    def harvest(self, collector) -> None:
        """After quiescence: report this partition's distances."""
        self.compute(0.5)
        self.send(collector, "collect", dict(self.dist), size=64.0)


class Collector(Chare):
    """Client of quiescence detection: gathers the final distances."""

    def init(self, array=None, **_ignored) -> None:
        self._array = array
        self.distances: Dict[int, float] = {}
        self._pending = 0

    def quiesced(self, _msg) -> None:
        """QD callback: the relaxation wave has drained — harvest."""
        self.compute(1.0)
        self._pending = len(self._array)
        self._array.broadcast_from(self._ctx(), "harvest", self, size=16.0)

    def collect(self, part_distances: Dict[int, float]) -> None:
        self.distances.update(part_distances)
        self._pending -= 1


def run(
    nodes: int = 60,
    edges: int = 150,
    parts: int = 8,
    pes: int = 4,
    source: int = 0,
    seed: int = 0,
    latency: Optional[LatencyModel] = None,
    noise: Optional[NoiseModel] = None,
    tracing: Optional[TracingOptions] = None,
) -> Tuple[Trace, Dict[int, float]]:
    """Run asynchronous SSSP; returns ``(trace, distances)``."""
    graph = make_graph(nodes, edges, seed)
    rt = CharmRuntime(
        num_pes=pes,
        latency=latency or UniformLatency(seed=seed, jitter=0.6),
        noise=noise,
        tracing=tracing,
        metadata={"app": "sssp", "model": "charm", "nodes": nodes,
                  "edges": graph.number_of_edges(), "parts": parts},
    )
    arr = rt.create_array("Part", GraphPart, shape=(parts,),
                          graph=graph, num_parts=parts)
    collector = rt.create_chare("Collector", Collector, pe=0, array=arr)
    rt.start_quiescence_detection(collector.chare, "quiesced", at=5.0)
    rt.seed(arr[(source % parts,)], "relax", (source, 0.0))
    rt.run()
    return rt.finish(), dict(collector.chare.distances)


def reference_distances(nodes: int, edges: int, seed: int,
                        source: int = 0) -> Dict[int, float]:
    """Dijkstra ground truth for the same generated graph."""
    graph = make_graph(nodes, edges, seed)
    return dict(nx.single_source_dijkstra_path_length(
        graph, source, weight="weight"))
