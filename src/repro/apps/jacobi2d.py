"""Jacobi 2D heat iteration on a chare array (the paper's running example).

Each chare owns a rectangular sub-domain.  Per iteration it sends ghost
rows/columns to its 4-neighbours, waits for theirs (SDAG ``when``), runs
the stencil update, and contributes the local residual to a ``max``
reduction whose result is broadcast back to begin the next iteration —
producing the alternating application/runtime phase pattern of Figure 8.

Injectable pathologies reproduce the metric figures: a straggler chare
(Figure 15, differential duration), a straggler PE (Figure 14, imbalance),
and OS jitter (Figure 12, idle experienced).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.sim.charm import Chare, CharmRuntime, EntrySpec, TracingOptions, WhenCounter
from repro.sim.network import LatencyModel, UniformLatency
from repro.sim.noise import NoiseModel
from repro.trace.model import Trace


class JacobiBlock(Chare):
    """One sub-domain of the Jacobi grid."""

    ENTRIES = {
        "begin_iteration": EntrySpec(is_sdag_serial=True, sdag_ordinal=0),
        "recv_ghost": EntrySpec(is_sdag_serial=True, sdag_ordinal=1),
        "update": EntrySpec(is_sdag_serial=True, sdag_ordinal=2),
    }

    def init(self, nx: int = 8, ny: int = 8, iterations: int = 2,
             ghost_bytes: float = 512.0, compute_cost: float = 60.0,
             pack_cost: float = 4.0, lb_period: int = 0, **_ignored) -> None:
        self.nx = nx
        self.ny = ny
        self.iterations = iterations
        self.ghost_bytes = ghost_bytes
        self.compute_cost = compute_cost
        self.pack_cost = pack_cost
        self.lb_period = lb_period
        self.iteration = 0
        self._when: Optional[WhenCounter] = None

    def neighbors(self):
        x, y = self.index
        out = []
        for dx, dy in ((-1, 0), (1, 0), (0, -1), (0, 1)):
            nx, ny = x + dx, y + dy
            if 0 <= nx < self.nx and 0 <= ny < self.ny:
                out.append(self.array[(nx, ny)])
        return out

    # -- entry methods ---------------------------------------------------
    def start(self, _msg) -> None:
        """Broadcast target from the main chare; kicks off iteration 0."""
        self._when = WhenCounter(len(self.neighbors()))
        self.chain("begin_iteration", None)

    def begin_iteration(self, _msg) -> None:
        """Serial 0: pack and send ghost data to every neighbour."""
        self.compute(self.pack_cost)
        for nb in self.neighbors():
            self.send(nb, "recv_ghost", self.iteration, size=self.ghost_bytes)

    def recv_ghost(self, iteration: int) -> None:
        """SDAG when: buffer ghosts per iteration; fire update when full."""
        if self._when.deposit(iteration):
            self.chain("update", iteration)

    def update(self, _iteration: int) -> None:
        """Serial 2: stencil update, then contribute the residual."""
        self.compute(self.compute_cost)
        residual = 1.0 / (1 + self.iteration)
        self.contribute(residual, "max", ("broadcast", "resume"))

    def resume(self, _residual: float) -> None:
        """Reduction client: advance to the next iteration (or stop).

        With ``lb_period`` set, every lb_period-th iteration boundary is
        an AtSync point: the runtime load balancer may migrate chares
        before ``resume_from_sync`` restarts the iteration loop.
        """
        self.iteration += 1
        if self.iteration >= self.iterations:
            return
        if self.lb_period and self.iteration % self.lb_period == 0:
            self.at_sync()
        else:
            self.chain("begin_iteration", None)

    def resume_from_sync(self, _msg) -> None:
        """Load-balancer client: continue after a possible migration."""
        self.chain("begin_iteration", None)


class JacobiMain(Chare):
    """Main chare: starts the array with a single broadcast."""

    def init(self, array=None, **_ignored) -> None:
        self._array = array

    def begin(self, _msg) -> None:
        self.compute(2.0)
        self._array.broadcast_from(self._ctx(), "start", None, size=16.0)


def run(
    chares: Tuple[int, int] = (8, 8),
    pes: int = 8,
    iterations: int = 2,
    seed: int = 0,
    ghost_bytes: float = 512.0,
    compute_cost: float = 60.0,
    latency: Optional[LatencyModel] = None,
    noise: Optional[NoiseModel] = None,
    tracing: Optional[TracingOptions] = None,
    mapping: str = "block",
    lb_period: int = 0,
    balancer=None,
) -> Trace:
    """Simulate Jacobi 2D and return its trace.

    Parameters mirror the paper's experiments: ``chares=(8, 8), pes=8`` is
    the Figure 8 setting; ``(4, 4)`` with 8 PEs gives the 16-chare runs of
    Figures 12-15.  Pass a noise model to inject stragglers or jitter.

    ``lb_period=N`` inserts a measurement-based load-balancing step (with
    chare migration) every N iterations; ``balancer`` selects the strategy
    (default :class:`~repro.sim.charm.loadbalance.GreedyBalancer`).
    """
    nx, ny = chares
    rt = CharmRuntime(
        num_pes=pes,
        latency=latency or UniformLatency(seed=seed, jitter=0.4),
        noise=noise,
        tracing=tracing,
        metadata={"app": "jacobi2d", "chares": [nx, ny], "iterations": iterations},
    )
    if balancer is not None:
        rt.set_balance_strategy(balancer)
    arr = rt.create_array(
        "Jacobi", JacobiBlock, shape=(nx, ny), mapping=mapping,
        nx=nx, ny=ny, iterations=iterations,
        ghost_bytes=ghost_bytes, compute_cost=compute_cost,
        lb_period=lb_period,
    )
    main = rt.create_chare("Main", JacobiMain, pe=0, array=arr)
    rt.seed(main.chare, "begin")
    rt.run()
    return rt.finish()
