"""A NAS BT-style ADI sweep code (MPI), the Figure 1 workload.

NAS BT decomposes a 3D domain over a square process grid and each
iteration performs pipelined line solves along each dimension.  The model
keeps the communication skeleton: per iteration, a forward+backward
pipelined sweep along grid rows (x-solve), then along columns (y-solve),
then a local z-solve, closing with a periodic residual allreduce — enough
to exhibit the staircase logical structure of the paper's Figure 1.
"""

from __future__ import annotations

import math
from typing import Iterator, Optional

from repro.sim.mpi import MpiSimulation, RankApi
from repro.sim.network import LatencyModel, UniformLatency
from repro.sim.noise import NoiseModel
from repro.trace.model import Trace


def run(
    ranks: int = 9,
    iterations: int = 2,
    seed: int = 0,
    compute_cost: float = 30.0,
    line_bytes: float = 1024.0,
    latency: Optional[LatencyModel] = None,
    noise: Optional[NoiseModel] = None,
) -> Trace:
    """Simulate the BT-like sweep; ``ranks`` must be a perfect square.

    The paper's Figure 1 uses the 9-process (3x3) NAS BT trace.
    """
    side = math.isqrt(ranks)
    if side * side != ranks:
        raise ValueError("ranks must be a perfect square")

    def body(rank: int, comm: RankApi) -> Iterator:
        row, col = divmod(rank, side)

        def sweep(prev: int, nxt: int, tag: int) -> Iterator:
            """One pipelined line solve: wait upstream, compute, push on."""
            if prev >= 0:
                yield comm.recv(prev, tag=tag)
            yield comm.compute(compute_cost)
            if nxt >= 0:
                yield comm.send(nxt, tag=tag, size=line_bytes)

        for it in range(iterations):
            base = it * 100
            # x-solve: forward then backward along the row.
            left = rank - 1 if col > 0 else -1
            right = rank + 1 if col < side - 1 else -1
            yield from sweep(left, right, base + 1)
            yield from sweep(right, left, base + 2)
            # y-solve: forward then backward along the column.
            up = rank - side if row > 0 else -1
            down = rank + side if row < side - 1 else -1
            yield from sweep(up, down, base + 3)
            yield from sweep(down, up, base + 4)
            # z-solve is rank-local.
            yield comm.compute(compute_cost)
            yield comm.allreduce(1.0, op="sum")

    sim = MpiSimulation(
        num_ranks=ranks,
        latency=latency or UniformLatency(seed=seed, jitter=0.4),
        noise=noise,
        metadata={"app": "nasbt", "ranks": ranks, "iterations": iterations},
    )
    sim.run(body)
    return sim.finish()
