"""LASSEN: wavefront-propagation proxy application (Figures 20-23).

Space is a regular 2D Cartesian grid of sub-domains; a wavefront expands
from the origin corner.  Per iteration each sub-domain:

1. computes — the cost is high only where the front currently intersects
   the sub-domain (this data-dependent locality produces the repeated
   long events of Figures 21/22 and the spreading of Figure 23);
2. exchanges front data with its neighbours, alternating the send order
   between iterations (the paper observes the point-to-point phase
   structure alternating in the Charm++ traces);
3. Charm++ only: emits a short self-invocation control phase;
4. joins an allreduce deciding whether the simulation is done.

Both a Charm++ (`run_charm`) and an MPI (`run_mpi`) implementation are
provided, mirroring the paper's comparison runs.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Optional, Tuple

from repro.sim.charm import Chare, CharmRuntime, EntrySpec, TracingOptions, WhenCounter
from repro.sim.mpi import MpiSimulation, RankApi
from repro.sim.network import LatencyModel, UniformLatency
from repro.sim.noise import NoiseModel
from repro.trace.model import Trace

#: Abstract size of the whole domain (front coordinates live in [0, 1]^2).
_FRONT_SPEED = 0.11
#: Initial front radius (the deposited source region already spans a few
#: fine-grid cells, as in the LASSEN default problem).
_FRONT_R0 = 0.28
#: Radial thickness of the active wavefront band.
_FRONT_WIDTH = 0.20
#: Sampling resolution for the box/annulus coverage estimate.
_SAMPLES = 6


def _grid2d(count: int) -> Tuple[int, int]:
    """Near-square 2D factorization of ``count`` (exact)."""
    best = (count, 1)
    for a in range(1, int(math.isqrt(count)) + 1):
        if count % a == 0:
            best = (count // a, a)
    return best


def front_work(index: Tuple[int, int], shape: Tuple[int, int], iteration: int,
               base: float, front_cost: float) -> float:
    """Compute cost of a sub-domain at an iteration.

    The wavefront is an annulus band of outer radius
    ``_FRONT_R0 + iteration * _FRONT_SPEED`` and thickness ``_FRONT_WIDTH``
    centred at the domain origin.  A sub-domain's cost grows with the
    share of the band's area it covers (estimated by grid sampling), so
    the *total* front work per iteration is decomposition independent: a
    finer decomposition splits the same work across more chares, each
    carrying proportionally less — the Figure 23 effect (the paper saw
    roughly a quarter of the 8-chare differential duration at 64 chares,
    and under half the imbalance).
    """
    sx, sy = shape
    x0, y0 = index[0] / sx, index[1] / sy
    x1, y1 = (index[0] + 1) / sx, (index[1] + 1) / sy
    outer = _FRONT_R0 + iteration * _FRONT_SPEED
    inner = max(0.0, outer - _FRONT_WIDTH)
    # Fraction of this box inside the annulus, by deterministic sampling.
    inside = 0
    for i in range(_SAMPLES):
        px = x0 + (i + 0.5) * (x1 - x0) / _SAMPLES
        for j in range(_SAMPLES):
            py = y0 + (j + 0.5) * (y1 - y0) / _SAMPLES
            if inner <= math.hypot(px, py) <= outer:
                inside += 1
    if not inside:
        return base
    covered = (x1 - x0) * (y1 - y0) * inside / (_SAMPLES * _SAMPLES)
    # Quarter-annulus area within the unit domain (clipped approximation).
    band_area = (math.pi / 4.0) * (min(outer, 1.4) ** 2 - inner ** 2)
    return base + front_cost * min(1.0, covered / band_area)


# ---------------------------------------------------------------------------
# Charm++ implementation
# ---------------------------------------------------------------------------
class LassenChare(Chare):
    """One sub-domain of the wavefront grid."""

    ENTRIES = {
        "advance": EntrySpec(is_sdag_serial=True, sdag_ordinal=0),
        "recv_front": EntrySpec(is_sdag_serial=True, sdag_ordinal=1),
        "post": EntrySpec(is_sdag_serial=True, sdag_ordinal=2),
    }

    def init(self, iterations: int = 4, msg_bytes: float = 256.0,
             base_cost: float = 10.0, front_cost: float = 90.0,
             **_ignored) -> None:
        self.iterations = iterations
        self.msg_bytes = msg_bytes
        self.base_cost = base_cost
        self.front_cost = front_cost
        self.iteration = 0
        self._neighbors: List = []
        self._when: Optional[WhenCounter] = None

    def _resolve_neighbors(self) -> None:
        sx, sy = self.array.shape
        x, y = self.index
        out = []
        for dx, dy in ((-1, 0), (1, 0), (0, -1), (0, 1)):
            nx, ny = x + dx, y + dy
            if 0 <= nx < sx and 0 <= ny < sy:
                out.append(self.array[(nx, ny)])
        self._neighbors = out
        self._when = WhenCounter(len(out))

    # -- entry methods ---------------------------------------------------
    def start(self, _msg) -> None:
        self._resolve_neighbors()
        self.chain("advance", None)

    def advance(self, _msg) -> None:
        """Serial 0: propagate the front, send updates to neighbours.

        The neighbour order alternates between iterations — the paper
        observes the resulting alternating point-to-point structure.
        """
        self.compute(
            front_work(self.index, self.array.shape, self.iteration,
                       self.base_cost, self.front_cost)
        )
        order = self._neighbors if self.iteration % 2 == 0 else list(reversed(self._neighbors))
        for nb in order:
            self.send(nb, "recv_front", self.iteration, size=self.msg_bytes)

    def recv_front(self, iteration: int) -> None:
        if self._when.deposit(iteration):
            self.chain("post", iteration)

    def post(self, _iteration: int) -> None:
        """Serial 2: contribute to the done-check, then a self control send.

        The contribute crosses into the runtime, so the trailing self-
        invocation forms its own short application phase — the "pure
        control message to move the computation forward" the paper sees
        between the point-to-point phase and the allreduce in Charm++
        LASSEN traces (Section 6.2).
        """
        self.compute(self.base_cost * 0.2)
        remaining = self.iterations - self.iteration - 1
        self.contribute(float(remaining), "max", ("broadcast", "resume"))
        self.send(self, "control", self.iteration, size=8.0)

    def control(self, _iteration: int) -> None:
        """Pure control step: local bookkeeping only."""
        self.compute(self.base_cost * 0.1)

    def resume(self, remaining: float) -> None:
        self.iteration += 1
        if remaining > 0:
            self.chain("advance", None)


class LassenMain(Chare):
    """Main chare: starts the wavefront array."""

    def init(self, array=None, **_ignored) -> None:
        self._array = array

    def begin(self, _msg) -> None:
        self.compute(2.0)
        self._array.broadcast_from(self._ctx(), "start", None, size=16.0)


def run_charm(
    chares: int = 8,
    pes: int = 8,
    iterations: int = 4,
    seed: int = 0,
    msg_bytes: float = 256.0,
    base_cost: float = 10.0,
    front_cost: float = 90.0,
    latency: Optional[LatencyModel] = None,
    noise: Optional[NoiseModel] = None,
    tracing: Optional[TracingOptions] = None,
    mapping: str = "shuffle",
) -> Trace:
    """Simulate Charm++ LASSEN (paper settings: 8 or 64 chares, 8 PEs).

    The default ``shuffle`` mapping scatters sub-domains evenly across
    PEs, which is what lets over-decomposition spread the wavefront's
    work (Figure 23).
    """
    shape = _grid2d(chares)
    rt = CharmRuntime(
        num_pes=pes,
        latency=latency or UniformLatency(seed=seed, jitter=0.4),
        noise=noise,
        tracing=tracing,
        metadata={"app": "lassen", "model": "charm", "chares": chares,
                  "iterations": iterations},
    )
    arr = rt.create_array(
        "Lassen", LassenChare, shape=shape, mapping=mapping,
        iterations=iterations, msg_bytes=msg_bytes,
        base_cost=base_cost, front_cost=front_cost,
    )
    main = rt.create_chare("Main", LassenMain, pe=0, array=arr)
    rt.seed(main.chare, "begin")
    rt.run()
    return rt.finish()


# ---------------------------------------------------------------------------
# MPI implementation
# ---------------------------------------------------------------------------
def _mpi_rank_fn(shape: Tuple[int, int], iterations: int, msg_bytes: float,
                 base_cost: float, front_cost: float):
    sx, sy = shape

    def coords(rank: int) -> Tuple[int, int]:
        return (rank // sy, rank % sy)

    def rank_of(idx: Tuple[int, int]) -> int:
        return idx[0] * sy + idx[1]

    def body(rank: int, comm: RankApi) -> Iterator:
        me = coords(rank)
        nbrs = []
        for dx, dy in ((-1, 0), (1, 0), (0, -1), (0, 1)):
            nx, ny = me[0] + dx, me[1] + dy
            if 0 <= nx < sx and 0 <= ny < sy:
                nbrs.append(rank_of((nx, ny)))
        for it in range(iterations):
            yield comm.compute(front_work(me, shape, it, base_cost, front_cost))
            for nb in nbrs:
                yield comm.send(nb, tag=it, size=msg_bytes)
            for nb in nbrs:
                yield comm.recv(nb, tag=it)
            yield comm.allreduce(float(iterations - it - 1), op="max")

    return body


def run_mpi(
    ranks: int = 8,
    iterations: int = 4,
    seed: int = 0,
    msg_bytes: float = 256.0,
    base_cost: float = 10.0,
    front_cost: float = 90.0,
    latency: Optional[LatencyModel] = None,
    noise: Optional[NoiseModel] = None,
) -> Trace:
    """Simulate MPI LASSEN (paper settings: 8 or 64 processes)."""
    shape = _grid2d(ranks)
    sim = MpiSimulation(
        num_ranks=ranks,
        latency=latency or UniformLatency(seed=seed, jitter=0.4),
        noise=noise,
        metadata={"app": "lassen", "chares": ranks, "iterations": iterations},
    )
    sim.run(_mpi_rank_fn(shape, iterations, msg_bytes, base_cost, front_cost))
    return sim.finish()
