"""Over-decomposed BT-style ADI sweeps on a chare array (Charm++).

The Figure 1 workload (:mod:`repro.apps.nasbt`) is process-centric; this
companion runs the same pipelined line-solve pattern on an over-decomposed
chare array — several tiles per PE — which is where task-based runtimes
shine: while one row's x-sweep drains, other rows' sweeps and the next
dimension's pipeline fill the processors.  The recovered logical structure
shows the per-dimension sweep wavefronts as long staircase phases, and the
benefit of overdecomposition shows up as reduced idle experienced compared
to a one-tile-per-PE run.

Per iteration each tile: waits for its left neighbour's x-sweep message,
solves its line segment, forwards right; then the same top-to-bottom for
the y-sweep (a tile's y-sweep additionally requires its own x-sweep to
have passed); finally a local z-solve feeds the residual allreduce.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.sim.charm import Chare, CharmRuntime, EntrySpec, TracingOptions
from repro.sim.network import LatencyModel, UniformLatency
from repro.sim.noise import NoiseModel
from repro.trace.model import Trace


class SweepTile(Chare):
    """One tile of the 2D decomposition."""

    ENTRIES = {
        "xrecv": EntrySpec(is_sdag_serial=True, sdag_ordinal=0),
        "xrun": EntrySpec(is_sdag_serial=True, sdag_ordinal=1),
        "yrecv": EntrySpec(is_sdag_serial=True, sdag_ordinal=2),
        "yrun": EntrySpec(is_sdag_serial=True, sdag_ordinal=3),
    }

    def init(self, iterations: int = 2, solve_cost: float = 25.0,
             line_bytes: float = 512.0, **_ignored) -> None:
        self.iterations = iterations
        self.solve_cost = solve_cost
        self.line_bytes = line_bytes
        self.iteration = 0
        self._x_done = False
        self._y_token: Optional[int] = None

    # -- helpers -----------------------------------------------------------
    def _tile(self, dx: int, dy: int):
        sx, sy = self.array.shape
        nx, ny = self.index[0] + dx, self.index[1] + dy
        if 0 <= nx < sx and 0 <= ny < sy:
            return self.array[(nx, ny)]
        return None

    # -- entry methods ---------------------------------------------------
    def start(self, _msg) -> None:
        if self.index[0] == 0:
            self.chain("xrun", self.iteration)

    def xrecv(self, iteration: int) -> None:
        """SDAG when: the x-sweep reached this tile from the left."""
        self.chain("xrun", iteration)

    def xrun(self, iteration: int) -> None:
        """Serial: solve this tile's x-lines and forward the sweep."""
        self.compute(self.solve_cost)
        right = self._tile(1, 0)
        if right is not None:
            self.send(right, "xrecv", iteration, size=self.line_bytes)
        self._x_done = True
        self._maybe_y(iteration)

    def yrecv(self, iteration: int) -> None:
        """SDAG when: the y-sweep reached this tile from above."""
        self._y_token = iteration
        self._maybe_y(iteration)

    def _maybe_y(self, iteration: int) -> None:
        ready_from_above = self.index[1] == 0 or self._y_token == iteration
        if self._x_done and ready_from_above:
            self._x_done = False
            self._y_token = None
            self.chain("yrun", iteration)

    def yrun(self, iteration: int) -> None:
        """Serial: y-line solve, forward down, local z-solve + reduction."""
        self.compute(self.solve_cost)
        down = self._tile(0, 1)
        if down is not None:
            self.send(down, "yrecv", iteration, size=self.line_bytes)
        self.compute(self.solve_cost * 0.6)  # local z-solve
        self.contribute(1.0, "sum", ("broadcast", "resume"))

    def resume(self, _residual: float) -> None:
        self.iteration += 1
        if self.iteration < self.iterations and self.index[0] == 0:
            self.chain("xrun", self.iteration)


class SweepMain(Chare):
    """Main chare: starts the tile array."""

    def init(self, array=None, **_ignored) -> None:
        self._array = array

    def begin(self, _msg) -> None:
        self.compute(2.0)
        self._array.broadcast_from(self._ctx(), "start", None, size=16.0)


def run(
    tiles: Tuple[int, int] = (6, 6),
    pes: int = 6,
    iterations: int = 2,
    seed: int = 0,
    solve_cost: float = 25.0,
    latency: Optional[LatencyModel] = None,
    noise: Optional[NoiseModel] = None,
    tracing: Optional[TracingOptions] = None,
    mapping: str = "shuffle",
) -> Trace:
    """Simulate the over-decomposed sweep code."""
    tx, ty = tiles
    rt = CharmRuntime(
        num_pes=pes,
        latency=latency or UniformLatency(seed=seed, jitter=0.3),
        noise=noise,
        tracing=tracing,
        metadata={"app": "btsweep", "model": "charm", "tiles": [tx, ty],
                  "iterations": iterations},
    )
    arr = rt.create_array(
        "Tile", SweepTile, shape=(tx, ty), mapping=mapping,
        iterations=iterations, solve_cost=solve_cost,
    )
    main = rt.create_chare("Main", SweepMain, pe=0, array=arr)
    rt.seed(main.chare, "begin")
    rt.run()
    return rt.finish()
