"""Sub-block durations and the *differential duration* metric (Section 4).

Dependency events divide each serial block into event-delimited units of
computation (Figure 13): the sub-block of event *e* spans from the previous
event in the block (or the block start) to *e*.  Leftover time after the
last event goes to the block-starting event when it was recorded, else to
the last event.  Computations at the same logical step of the same phase
are assumed comparable, so *differential duration* is each sub-block's
excess over the shortest sub-block at its (phase, step).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.structure import LogicalStructure
from repro.trace.events import NO_ID


def sub_block_durations(structure: LogicalStructure) -> Dict[int, float]:
    """Duration of the sub-block each dependency event delimits."""
    trace = structure.trace
    durations: Dict[int, float] = {}
    for block in structure.blocks:
        if not block.events:
            continue
        prev_time = block.start
        for ev in block.events:
            t = trace.events[ev].time
            durations[ev] = t - prev_time
            prev_time = t
        leftover = block.end - prev_time
        if leftover > 0:
            # Assign leftover to the block-starting event if recorded,
            # otherwise to the last event (Figure 13).
            anchor = block.recv_event if block.recv_event != NO_ID else block.events[-1]
            durations[anchor] = durations.get(anchor, 0.0) + leftover
    return durations


@dataclass
class DifferentialDuration:
    """Differential duration per event, with the group minima retained."""

    by_event: Dict[int, float] = field(default_factory=dict)
    durations: Dict[int, float] = field(default_factory=dict)
    #: Minimum sub-block duration per (phase, global step) group.
    group_min: Dict[Tuple[int, int], float] = field(default_factory=dict)

    def max_event(self) -> int:
        """Event id with the largest differential duration (-1 if empty)."""
        if not self.by_event:
            return -1
        return max(self.by_event, key=lambda e: self.by_event[e])

    def max_value(self) -> float:
        """Largest differential duration (0 if empty)."""
        return max(self.by_event.values(), default=0.0)


def differential_duration(structure: LogicalStructure) -> DifferentialDuration:
    """Excess sub-block time relative to peers at the same logical step."""
    durations = sub_block_durations(structure)
    result = DifferentialDuration(durations=durations)

    groups: Dict[Tuple[int, int], List[int]] = {}
    for ev, dur in durations.items():
        step = structure.step_of_event[ev]
        phase = structure.phase_of_event[ev]
        if step < 0 or phase < 0:
            continue
        groups.setdefault((phase, step), []).append(ev)

    for key, evs in groups.items():
        lo = min(durations[e] for e in evs)
        result.group_min[key] = lo
        for e in evs:
            result.by_event[e] = durations[e] - lo
    return result
