"""Aggregate usage profiles (Projections-style summaries).

The paper positions its logical-time metrics against Projections' profile
views (Section 8); this module provides those baseline aggregations so the
two perspectives can be compared on the same trace: per-entry-method time
and invocation counts, and per-PE utilization (busy / idle / overhead).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.trace.model import Trace


@dataclass
class EntryProfile:
    """Aggregate cost of one entry method."""

    name: str
    calls: int = 0
    total_time: float = 0.0
    max_time: float = 0.0

    @property
    def mean_time(self) -> float:
        return self.total_time / self.calls if self.calls else 0.0


@dataclass
class PeUtilization:
    """Busy/idle accounting for one processor."""

    pe: int
    busy: float = 0.0
    idle: float = 0.0
    #: Time in runtime-chare executions (scheduler/reduction overhead).
    overhead: float = 0.0
    span: float = 0.0

    @property
    def utilization(self) -> float:
        """Application-busy fraction of the PE's observed span."""
        return (self.busy - self.overhead) / self.span if self.span > 0 else 0.0


@dataclass
class UsageProfile:
    """Full profile of a trace."""

    entries: Dict[str, EntryProfile] = field(default_factory=dict)
    pes: List[PeUtilization] = field(default_factory=list)

    def top_entries(self, n: int = 10) -> List[EntryProfile]:
        """Entry methods by total time, descending."""
        return sorted(self.entries.values(), key=lambda e: -e.total_time)[:n]


def usage_profile(trace: Trace) -> UsageProfile:
    """Compute per-entry and per-PE aggregates of a trace."""
    profile = UsageProfile()
    span = trace.end_time()
    for ex in trace.executions:
        name = trace.entry(ex.entry).name
        ep = profile.entries.get(name)
        if ep is None:
            ep = profile.entries[name] = EntryProfile(name)
        duration = ex.duration()
        ep.calls += 1
        ep.total_time += duration
        ep.max_time = max(ep.max_time, duration)

    for pe in range(trace.num_pes):
        util = PeUtilization(pe=pe, span=span)
        for xid in trace.executions_by_pe.get(pe, ()):
            ex = trace.executions[xid]
            util.busy += ex.duration()
            if trace.is_runtime_chare(ex.chare):
                util.overhead += ex.duration()
        for idle in trace.idles_by_pe.get(pe, ()):
            util.idle += idle.duration()
        profile.pes.append(util)
    return profile


def profile_table(profile: UsageProfile, top: int = 10) -> str:
    """Render the profile as an aligned text table."""
    lines = [f"{'entry method':40s} {'calls':>7s} {'total':>10s} "
             f"{'mean':>8s} {'max':>8s}"]
    for ep in profile.top_entries(top):
        lines.append(
            f"{ep.name[:40]:40s} {ep.calls:7d} {ep.total_time:10.1f} "
            f"{ep.mean_time:8.2f} {ep.max_time:8.2f}"
        )
    lines.append("")
    lines.append(f"{'PE':>4s} {'busy':>10s} {'overhead':>10s} {'idle':>10s} "
                 f"{'util%':>6s}")
    for util in profile.pes:
        lines.append(
            f"{util.pe:4d} {util.busy:10.1f} {util.overhead:10.1f} "
            f"{util.idle:10.1f} {100 * util.utilization:6.1f}"
        )
    return "\n".join(lines)
