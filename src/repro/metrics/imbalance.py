"""The per-phase *imbalance* metric (Section 4, Figure 14).

For each phase, sum each participating processor's sub-block durations;
the phase's imbalance is the spread between the most and least loaded
processors, and each processor's imbalance is its excess over the least
loaded one.  Values are mapped back to events so the spread can be
inspected in both processor and chare space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.core.structure import LogicalStructure
from repro.metrics.duration import sub_block_durations


@dataclass
class ImbalanceResult:
    """Imbalance per (phase, pe), per phase, and anchored per event."""

    #: Busy time per (phase id, pe).
    load: Dict[Tuple[int, int], float] = field(default_factory=dict)
    #: Excess over the minimally loaded PE, per (phase id, pe).
    by_phase_pe: Dict[Tuple[int, int], float] = field(default_factory=dict)
    #: max - min load per phase id.
    max_by_phase: Dict[int, float] = field(default_factory=dict)
    #: Each event inherits the imbalance of its (phase, pe).
    by_event: Dict[int, float] = field(default_factory=dict)

    def worst_phase(self) -> int:
        """Phase id with the largest imbalance (-1 if empty)."""
        if not self.max_by_phase:
            return -1
        return max(self.max_by_phase, key=lambda p: self.max_by_phase[p])


def imbalance(structure: LogicalStructure) -> ImbalanceResult:
    """Compute computation imbalance at the phase level."""
    trace = structure.trace
    durations = sub_block_durations(structure)
    result = ImbalanceResult()

    for ev, dur in durations.items():
        phase = structure.phase_of_event[ev]
        if phase < 0:
            continue
        pe = trace.events[ev].pe
        key = (phase, pe)
        result.load[key] = result.load.get(key, 0.0) + dur

    per_phase: Dict[int, Dict[int, float]] = {}
    for (phase, pe), load in result.load.items():
        per_phase.setdefault(phase, {})[pe] = load
    for phase, loads in per_phase.items():
        lo = min(loads.values())
        hi = max(loads.values())
        result.max_by_phase[phase] = hi - lo
        for pe, load in loads.items():
            result.by_phase_pe[(phase, pe)] = load - lo

    for ev in durations:
        phase = structure.phase_of_event[ev]
        if phase < 0:
            continue
        pe = trace.events[ev].pe
        result.by_event[ev] = result.by_phase_pe[(phase, pe)]
    return result
