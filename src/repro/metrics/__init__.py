"""Performance metrics over the logical structure (Section 4).

Traditional lateness assumes statically scheduled tasks; in task-based
runtimes the schedule is non-deterministic, so the paper instead measures
*efficient processor use*:

* :func:`idle_experienced` — idle time propagated forward to the serial
  blocks that were waiting on dependencies predating the idle span.
* :func:`differential_duration` — excess of each event-delimited sub-block
  over the shortest sub-block at the same logical step.
* :func:`imbalance` — per-phase spread of per-processor busy time.
* :func:`lateness` — the traditional baseline, for comparison.
"""

from repro.metrics.critical_path import CriticalPath, critical_path
from repro.metrics.duration import (
    DifferentialDuration,
    differential_duration,
    sub_block_durations,
)
from repro.metrics.idle import IdleExperienced, idle_experienced
from repro.metrics.imbalance import ImbalanceResult, imbalance
from repro.metrics.lateness import lateness
from repro.metrics.profile import (
    UsageProfile,
    profile_table,
    usage_profile,
)

__all__ = [
    "CriticalPath",
    "critical_path",
    "IdleExperienced",
    "idle_experienced",
    "DifferentialDuration",
    "differential_duration",
    "sub_block_durations",
    "ImbalanceResult",
    "imbalance",
    "lateness",
    "UsageProfile",
    "usage_profile",
    "profile_table",
]
