"""The *idle experienced* metric (Section 4, Figure 11).

A recorded idle span on a processor is charged to the serial block that
runs directly after it, and then propagated forward: each subsequent block
on the processor whose triggering dependency (the send matching its
invocation) started *before the idle span ended* was also effectively
waiting through the idle, so it experiences it too.  Propagation stops at
the first block whose dependency arose after the idle ended (or whose
dependency is unknown).

"Directly after" means the first block starting at or after the idle's
*start*: a block that begins inside the idle span (the tracer closes idle
intervals at a grain coarser than block starts) is the block the idle was
waiting on and must not be skipped — cutting at ``idle.end`` instead
silently dropped those charges.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.structure import LogicalStructure
from repro.trace.events import NO_ID
from repro.trace.model import Trace


@dataclass
class IdleExperienced:
    """Result of the idle-experienced computation.

    ``by_block`` maps serial-block id to accumulated idle seconds;
    ``by_event`` anchors the same values on each block's first dependency
    event (the natural place to color in a logical-structure view).
    """

    by_block: Dict[int, float] = field(default_factory=dict)
    by_event: Dict[int, float] = field(default_factory=dict)

    def total(self) -> float:
        """Sum of idle experienced across all blocks."""
        return sum(self.by_block.values())

    def max_block(self) -> Optional[int]:
        """Block id with the largest idle experienced, or None."""
        if not self.by_block:
            return None
        return max(self.by_block, key=lambda b: self.by_block[b])


def idle_experienced(structure: LogicalStructure) -> IdleExperienced:
    """Compute idle experienced over the structure's serial blocks."""
    trace = structure.trace
    blocks = structure.blocks
    result = IdleExperienced()

    blocks_by_pe: Dict[int, List[int]] = {}
    for block in blocks:
        blocks_by_pe.setdefault(block.pe, []).append(block.id)
    starts_by_pe: Dict[int, List[float]] = {}
    for pe, ids in blocks_by_pe.items():
        ids.sort(key=lambda b: (blocks[b].start, b))
        starts_by_pe[pe] = [blocks[b].start for b in ids]

    for pe, idles in trace.idles_by_pe.items():
        ids = blocks_by_pe.get(pe)
        if not ids:
            continue
        starts = starts_by_pe[pe]
        for idle in idles:
            span = idle.duration()
            if span <= 0:
                continue
            pos = bisect_right(starts, idle.start)
            first = True
            while pos < len(ids):
                block = blocks[ids[pos]]
                if first:
                    _charge(result, trace, block, span)
                    first = False
                else:
                    dep_start = _dependency_start(trace, block)
                    if dep_start is None or dep_start >= idle.end:
                        break
                    _charge(result, trace, block, span)
                pos += 1
    return result


def _dependency_start(trace: Trace, block) -> Optional[float]:
    """Time the block's triggering dependency was initiated, if traced."""
    recv = block.recv_event
    if recv == NO_ID:
        return None
    mid = trace.message_by_recv[recv]
    if mid == NO_ID:
        return None
    send = trace.messages[mid].send_event
    if send == NO_ID:
        return None
    return trace.events[send].time


def _charge(result: IdleExperienced, trace: Trace, block, span: float) -> None:
    result.by_block[block.id] = result.by_block.get(block.id, 0.0) + span
    if block.events:
        first = block.events[0]
        result.by_event[first] = result.by_event.get(first, 0.0) + span
