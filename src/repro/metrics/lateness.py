"""Traditional *lateness*, the baseline the paper argues against.

Lateness compares completion times of events sharing a logical step: an
event is late by its delay behind the earliest peer at the same global
step.  This is meaningful in bulk-synchronous message-passing programs but
misleading for task-based runtimes, where same-step tasks are not expected
to execute simultaneously (Section 4) — which is why the paper introduces
idle-experienced / differential-duration / imbalance instead.  Provided
for comparison studies.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.structure import LogicalStructure


def lateness(structure: LogicalStructure) -> Dict[int, float]:
    """Delay of each event behind the earliest event at its global step."""
    trace = structure.trace
    by_step: Dict[int, List[int]] = {}
    for ev, step in enumerate(structure.step_of_event):
        if step >= 0:
            by_step.setdefault(step, []).append(ev)
    out: Dict[int, float] = {}
    for evs in by_step.values():
        earliest = min(trace.events[e].time for e in evs)
        for e in evs:
            out[e] = trace.events[e].time - earliest
    return out
