"""Critical-path extraction over the trace dependency graph.

An extension beyond the paper's metric set: the *critical path* is the
dependency chain (within-block order plus message edges) with the largest
total sub-block duration.  Shortening anything off the path cannot speed
the run up, so the per-chare/per-entry attribution of path time is a
natural companion to the paper's phase-local metrics — differential
duration says "this task is slower than peers", the critical path says
"and it gates the whole execution".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.structure import LogicalStructure
from repro.metrics.duration import sub_block_durations
from repro.trace.events import NO_ID, EventKind


@dataclass
class CriticalPath:
    """The heaviest dependency chain through the trace."""

    #: Event ids along the path, in dependency order.
    events: List[int] = field(default_factory=list)
    #: Total sub-block duration accumulated along the path.
    length: float = 0.0
    #: Path time attributed per chare id.
    by_chare: Dict[int, float] = field(default_factory=dict)
    #: Path time attributed per entry-method name.
    by_entry: Dict[str, float] = field(default_factory=dict)

    def share_of(self, total: float) -> float:
        """Fraction of ``total`` time the path accounts for."""
        return self.length / total if total > 0 else 0.0


def critical_path(structure: LogicalStructure) -> CriticalPath:
    """Compute the critical path of the structure's trace.

    Dynamic programming over the event DAG: each event's distance is its
    sub-block duration plus the largest distance among its dependencies —
    the previous event on its chare (chares execute serially, and this
    also carries the untraced control flow of chained SDAG serials), and
    its matching send when it is a receive.  Both edge families point
    strictly forward in physical time, so a single pass in time order
    suffices.
    """
    trace = structure.trace
    durations = sub_block_durations(structure)

    prev_on_chare: Dict[int, int] = {}
    last_on_chare: Dict[int, int] = {}
    for ev in sorted(durations, key=lambda e: (trace.events[e].time, e)):
        chare = trace.events[ev].chare
        if chare in last_on_chare:
            prev_on_chare[ev] = last_on_chare[chare]
        last_on_chare[chare] = ev

    order = sorted(durations, key=lambda e: (trace.events[e].time, e))
    dist: Dict[int, float] = {}
    pred: Dict[int, int] = {}
    for ev in order:
        best = 0.0
        best_pred = NO_ID
        prev = prev_on_chare.get(ev)
        if prev is not None and prev in dist and dist[prev] > best:
            best = dist[prev]
            best_pred = prev
        if trace.events[ev].kind == EventKind.RECV:
            mid = trace.message_by_recv[ev]
            if mid != NO_ID:
                send = trace.messages[mid].send_event
                if send != NO_ID and send in dist and dist[send] > best:
                    best = dist[send]
                    best_pred = send
        dist[ev] = best + durations[ev]
        if best_pred != NO_ID:
            pred[ev] = best_pred

    result = CriticalPath()
    if not dist:
        return result
    tail = max(dist, key=lambda e: dist[e])
    result.length = dist[tail]
    path: List[int] = []
    cursor: Optional[int] = tail
    while cursor is not None:
        path.append(cursor)
        cursor = pred.get(cursor)
    path.reverse()
    result.events = path

    for ev in path:
        rec = trace.events[ev]
        result.by_chare[rec.chare] = result.by_chare.get(rec.chare, 0.0) + durations[ev]
        if rec.execution >= 0:
            name = trace.entry(trace.executions[rec.execution].entry).name
            result.by_entry[name] = result.by_entry.get(name, 0.0) + durations[ev]
    return result
