"""repro — Recovering Logical Structure from Charm++ Event Traces.

A self-contained reproduction of Isaacs et al., SC '15: a framework that
reorganizes event traces of task-based (Charm++-style) and message-passing
programs from non-deterministic physical time into developer-intended
*logical structure*, plus the performance metrics defined over it, the
runtime/tracing substrates needed to generate such traces, and the paper's
proxy applications.

Quick start::

    from repro.api import extract
    from repro.apps import jacobi2d
    from repro.viz import render_logical

    trace = jacobi2d.run(chares=(8, 8), pes=8, iterations=2, seed=1)
    structure = extract(trace, order="reordered", backend="auto")
    print(render_logical(structure))

:mod:`repro.api` is the stable facade — every public name (pipeline,
trace I/O, verification, batch extraction) re-exported flat; the names
below are mirrored here for convenience.
"""

from repro.api import (
    BatchExtractor,
    LogicalStructure,
    Phase,
    PipelineOptions,
    PipelineStats,
    Trace,
    TraceBuilder,
    extract,
    extract_logical_structure,
    open_trace,
    read_trace,
    run_differential,
    validate_trace,
    verify_structure,
    write_trace,
)

__version__ = "1.1.0"

__all__ = [
    "BatchExtractor",
    "extract",
    "extract_logical_structure",
    "PipelineOptions",
    "PipelineStats",
    "LogicalStructure",
    "Phase",
    "Trace",
    "TraceBuilder",
    "open_trace",
    "read_trace",
    "run_differential",
    "verify_structure",
    "write_trace",
    "validate_trace",
    "__version__",
]
