"""repro — Recovering Logical Structure from Charm++ Event Traces.

A self-contained reproduction of Isaacs et al., SC '15: a framework that
reorganizes event traces of task-based (Charm++-style) and message-passing
programs from non-deterministic physical time into developer-intended
*logical structure*, plus the performance metrics defined over it, the
runtime/tracing substrates needed to generate such traces, and the paper's
proxy applications.

Quick start::

    from repro import extract_logical_structure
    from repro.apps import jacobi2d
    from repro.viz import render_logical

    trace = jacobi2d.run(chares=(8, 8), pes=8, iterations=2, seed=1)
    structure = extract_logical_structure(trace)
    print(render_logical(structure))
"""

from repro.core import (
    LogicalStructure,
    Phase,
    PipelineOptions,
    extract_logical_structure,
)
from repro.trace import Trace, TraceBuilder, read_trace, validate_trace, write_trace

__version__ = "1.0.0"

__all__ = [
    "extract_logical_structure",
    "PipelineOptions",
    "LogicalStructure",
    "Phase",
    "Trace",
    "TraceBuilder",
    "read_trace",
    "write_trace",
    "validate_trace",
    "__version__",
]
