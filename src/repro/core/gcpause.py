"""Scoped cyclic-GC pause for allocation-heavy extraction kernels.

The "accidental quadratic" in the serial-block split (ROADMAP item 2,
``initial`` 0.031s → 0.138s for 2x events) was not algorithmic: the
block builders allocate bursts of tiny short-lived objects (per-block
event lists, :class:`~repro.core.initial.Block` records, run slices),
and every ~70k allocations CPython's generational collector runs a
collection whose older generations scan *the entire live heap* —
dominated by the trace's event/execution records.  Collections per
extraction grow linearly with trace size and each collection's cost
grows linearly too, so the stage cost grows quadratically even though
the builder itself is linear.  Nothing the builders allocate is cyclic
garbage — reference counting reclaims all of it promptly — so the
collector does pure wasted work here.

:func:`pause_gc` disables the cyclic collector for the duration of a
``with`` block and restores it afterwards.  It is deliberately scoped
(not ``gc.freeze`` and not a global disable): the pause covers one
extraction, nesting is a no-op (the inner pause sees the collector
already off), and the ``finally`` re-enable holds under exceptions.
Anything cyclic created while paused is collected at the next ordinary
collection after re-enable.
"""

from __future__ import annotations

import gc
from contextlib import contextmanager
from typing import Iterator


@contextmanager
def pause_gc(active: bool = True) -> Iterator[None]:
    """Disable cyclic GC inside the ``with`` block when ``active``.

    No-op when ``active`` is false or the collector is already disabled
    (an enclosing pause, or a process that runs without GC) — in that
    case the context never touches collector state, so nested pauses
    compose and an outer policy is never overridden.
    """
    if not active or not gc.isenabled():
        yield
        return
    gc.disable()
    try:
        yield
    finally:
        gc.enable()
