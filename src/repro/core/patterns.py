"""Phase-pattern detection over recovered logical structures.

The paper's case studies argue structure quality by pointing at repeating
phase patterns ("a repeating pattern of three phases followed by an
allreduce", Section 6.1).  These helpers make such claims checkable in
code: phases are fingerprinted by their entry-method signature and the
linearized phase sequence is scanned for its dominant repetition period.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.structure import LogicalStructure


def signature_sequence(structure: LogicalStructure) -> List[Tuple]:
    """Entry signatures of phases in linearized (offset) order."""
    return [
        structure.phase_entry_signature(pid) for pid in structure.phase_sequence()
    ]


def kind_sequence(structure: LogicalStructure) -> str:
    """Compact app/runtime phase string, e.g. ``"arararar"``.

    ``a`` = application phase, ``r`` = runtime phase, in linearized order.
    """
    order = structure.phase_sequence()
    return "".join("r" if structure.phase(p).is_runtime else "a" for p in order)


def detect_period(
    items: Sequence, min_repeats: int = 3, skip_prefix_max: Optional[int] = None
) -> Tuple[int, int, int]:
    """Find the dominant repetition ``(period, start, repeats)`` of a sequence.

    Programs usually open with a setup prologue, so the scan tries every
    start offset up to ``skip_prefix_max`` (default: half the sequence) and
    every period, returning the combination covering the most items —
    preferring smaller periods on ties.  ``(0, 0, 0)`` when nothing repeats
    at least ``min_repeats`` times.
    """
    n = len(items)
    if skip_prefix_max is None:
        skip_prefix_max = n // 2
    best = (0, 0, 0)
    best_cover = 0
    for start in range(0, skip_prefix_max + 1):
        remaining = n - start
        for period in range(1, remaining // max(1, min_repeats) + 1):
            repeats = 1
            while (
                start + (repeats + 1) * period <= n
                and items[start + repeats * period : start + (repeats + 1) * period]
                == items[start : start + period]
            ):
                repeats += 1
            if repeats >= min_repeats:
                cover = repeats * period
                if cover > best_cover or (cover == best_cover and period < best[0]):
                    best = (period, start, repeats)
                    best_cover = cover
    return best


def repeating_unit(structure: LogicalStructure, min_repeats: int = 3) -> List[Dict]:
    """Describe the repeating phase unit of a structure.

    Returns one dict per phase in the detected unit, with its kind,
    signature, and span in steps; empty list when no repetition is found.
    """
    order = structure.phase_sequence()
    sigs = signature_sequence(structure)
    period, start, repeats = detect_period(sigs, min_repeats=min_repeats)
    if period == 0:
        return []
    unit = []
    for offset in range(period):
        pid = order[start + offset]
        phase = structure.phase(pid)
        unit.append(
            {
                "kind": "runtime" if phase.is_runtime else "application",
                "signature": sigs[start + offset],
                "steps": phase.max_local_step + 1,
                "chares": len(phase.chares),
                "repeats": repeats,
            }
        )
    return unit
