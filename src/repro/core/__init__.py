"""The paper's contribution: logical-structure recovery from event traces.

The public entry point is :func:`repro.core.pipeline.extract_logical_structure`,
which runs the two-stage algorithm of Section 3:

1. *Phase finding* — partition dependency events into a DAG of phases
   (:mod:`repro.core.initial`, :mod:`repro.core.merges`,
   :mod:`repro.core.inference`).
2. *Step assignment* — order events within each phase (optionally with the
   idealized-replay reordering of Section 3.2.1, :mod:`repro.core.reorder`)
   and assign global logical steps (:mod:`repro.core.stepping`).

The result is a :class:`repro.core.structure.LogicalStructure`, consumed by
:mod:`repro.metrics` and :mod:`repro.viz`.
"""

from repro.core.pipeline import (
    SEED_KEYS,
    STAGE_GRAPH,
    PipelineOptions,
    PipelineStats,
    StageSignature,
    extract_logical_structure,
)
from repro.core.structure import LogicalStructure, Phase

__all__ = [
    "SEED_KEYS",
    "STAGE_GRAPH",
    "PipelineOptions",
    "PipelineStats",
    "StageSignature",
    "extract_logical_structure",
    "LogicalStructure",
    "Phase",
]
