"""Section 3.2: logical step assignment.

Within each phase, events receive *local* steps: initial events are step 0
and every other event is one past the maximum of its happened-before
predecessors — the previous event in its chare's (possibly reordered)
order, and its matching send when it is a receive.  Local steps are then
offset by the phase DAG so that a phase starts after all its predecessors,
yielding *global* steps.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Sequence, Set, Tuple

from repro.trace.events import NO_ID, EventKind
from repro.trace.model import Trace


def assign_local_steps(
    trace: Trace,
    phase_events: Sequence[int],
    chare_orders: Dict[int, List[int]],
) -> Tuple[Dict[int, int], int]:
    """Assign local steps within one phase.

    Returns ``(step per event, max step)``.  Dependencies are the previous
    event in the chare order and, for receives, the matching in-phase send
    (a receive lands at least one step after its send).

    Reordering is heuristic; if a pathological order induces a dependency
    cycle, the remaining events fall back to physical-time processing with
    the unsatisfied dependencies ignored — the paper acknowledges such
    pathological cases exist (Section 3.2.1).
    """
    in_phase = set(phase_events)
    events = trace.events
    prev_on_chare: Dict[int, int] = {}
    next_on_chare: Dict[int, int] = {}
    for order in chare_orders.values():
        for a, b in zip(order, order[1:]):
            prev_on_chare[b] = a
            next_on_chare[a] = b

    def send_of(ev: int) -> int:
        if events[ev].kind != EventKind.RECV:
            return NO_ID
        mid = trace.message_by_recv[ev]
        if mid == NO_ID:
            return NO_ID
        send = trace.messages[mid].send_event
        return send if send != NO_ID and send in in_phase else NO_ID

    # Kahn's algorithm over the two dependency families.
    indegree: Dict[int, int] = {}
    dependents: Dict[int, List[int]] = {}
    for ev in phase_events:
        deg = 0
        if ev in prev_on_chare:
            deg += 1
            dependents.setdefault(prev_on_chare[ev], []).append(ev)
        send = send_of(ev)
        if send != NO_ID:
            deg += 1
            dependents.setdefault(send, []).append(ev)
        indegree[ev] = deg

    step: Dict[int, int] = {}
    queue = deque(ev for ev in phase_events if indegree[ev] == 0)
    while queue:
        ev = queue.popleft()
        deps = []
        if ev in prev_on_chare and prev_on_chare[ev] in step:
            deps.append(step[prev_on_chare[ev]])
        send = send_of(ev)
        if send != NO_ID and send in step:
            deps.append(step[send])
        step[ev] = max(deps) + 1 if deps else 0
        for dep in dependents.get(ev, ()):
            indegree[dep] -= 1
            if indegree[dep] == 0:
                queue.append(dep)

    if len(step) != len(in_phase):
        # Cycle fallback: process leftovers in physical-time order using
        # whatever dependency steps are already known.
        leftovers = sorted(
            (ev for ev in phase_events if ev not in step),
            key=lambda e: (events[e].time, e),
        )
        for ev in leftovers:
            deps = []
            prev = prev_on_chare.get(ev)
            if prev is not None and prev in step:
                deps.append(step[prev])
            send = send_of(ev)
            if send != NO_ID and send in step:
                deps.append(step[send])
            step[ev] = max(deps) + 1 if deps else 0

    max_step = max(step.values()) if step else -1
    return step, max_step


def assign_global_offsets(
    phase_ids: Sequence[int],
    preds: Dict[int, Set[int]],
    max_local: Dict[int, int],
) -> Dict[int, int]:
    """Offset each phase past all of its phase-DAG predecessors.

    ``offset(P) = max over preds Q of (offset(Q) + max_local(Q) + 1)``;
    phases without predecessors start at 0.  Empty phases (max_local = -1)
    consume no steps.
    """
    succs: Dict[int, List[int]] = {p: [] for p in phase_ids}
    indegree: Dict[int, int] = {p: 0 for p in phase_ids}
    for p in phase_ids:
        for q in preds[p]:
            succs[q].append(p)
            indegree[p] += 1
    offset: Dict[int, int] = {}
    queue = deque(p for p in phase_ids if indegree[p] == 0)
    seen = 0
    for p in queue:
        offset[p] = 0
    while queue:
        p = queue.popleft()
        seen += 1
        for s in succs[p]:
            cand = offset[p] + max_local[p] + 1
            if cand > offset.get(s, 0):
                offset[s] = cand
            indegree[s] -= 1
            if indegree[s] == 0:
                queue.append(s)
                offset.setdefault(s, 0)
    if seen != len(phase_ids):
        raise ValueError("phase DAG contains a cycle")
    return offset
