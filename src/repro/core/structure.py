"""The :class:`LogicalStructure` result object.

Bundles the phase DAG, per-event phase membership and logical steps, the
per-phase per-chare event orders, and the serial-block decomposition.
Everything downstream — metrics, rendering, pattern detection — reads from
this object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.core.initial import Block
from repro.trace.model import Trace


@dataclass
class Phase:
    """One phase of the recovered logical structure."""

    id: int
    events: List[int]
    chares: Set[int]
    is_runtime: bool
    leap: int
    preds: Set[int] = field(default_factory=set)
    succs: Set[int] = field(default_factory=set)
    #: Global step of the phase's local step 0.
    offset: int = 0
    #: Largest local step inside the phase (-1 when the phase is empty).
    max_local_step: int = -1

    @property
    def max_global_step(self) -> int:
        """Largest global step occupied by the phase."""
        return self.offset + self.max_local_step

    def __len__(self) -> int:
        return len(self.events)


class LogicalStructure:
    """Recovered logical structure of a trace (phases × logical steps)."""

    #: :class:`repro.resilience.report.DegradationReport` of the run that
    #: produced this structure (set by the pipeline; None on structures
    #: built by hand).  ``structure.degradation.degraded`` is the quick
    #: "is this a partial result" check.
    degradation = None

    def __init__(
        self,
        trace: Trace,
        phases: List[Phase],
        phase_of_event: List[int],
        step_of_event: List[int],
        local_step_of_event: List[int],
        chare_orders: Dict[Tuple[int, int], List[int]],
        blocks: List[Block],
        block_of_event: List[int],
        block_of_exec: List[int],
        options=None,
    ):
        self.trace = trace
        self.phases = phases
        self.phase_of_event = phase_of_event
        self.step_of_event = step_of_event
        self.local_step_of_event = local_step_of_event
        self.chare_orders = chare_orders
        self.blocks = blocks
        self.block_of_event = block_of_event
        self.block_of_exec = block_of_exec
        self.options = options

    # ------------------------------------------------------------------
    @property
    def max_step(self) -> int:
        """Largest global step in the structure (-1 when empty)."""
        return max((p.max_global_step for p in self.phases), default=-1)

    def phase(self, phase_id: int) -> Phase:
        """Phase by id."""
        return self.phases[phase_id]

    def application_phases(self) -> List[Phase]:
        """Phases whose dependencies are purely between application chares."""
        return [p for p in self.phases if not p.is_runtime]

    def runtime_phases(self) -> List[Phase]:
        """Phases involving runtime chares or app/runtime dependencies."""
        return [p for p in self.phases if p.is_runtime]

    def chare_timeline(self, chare: int) -> List[Tuple[int, int]]:
        """``(global step, event id)`` pairs of one chare, by step."""
        out = []
        for ev in range(len(self.trace.events)):
            if self.trace.events[ev].chare == chare and self.step_of_event[ev] >= 0:
                out.append((self.step_of_event[ev], ev))
        out.sort()
        return out

    def events_at_step(self, step: int) -> List[int]:
        """All events assigned the given global step."""
        return [ev for ev, s in enumerate(self.step_of_event) if s == step]

    def phase_sequence(self) -> List[int]:
        """Phase ids ordered by (offset, leap, id) — a linearized overview."""
        return [p.id for p in sorted(self.phases, key=lambda p: (p.offset, p.leap, p.id))]

    def phase_entry_signature(self, phase_id: int) -> Tuple[Tuple[str, int], ...]:
        """Multiset of entry-method names in a phase, as sorted pairs.

        Signatures identify repeating phase patterns across iterations
        (used to check the Figure 16/20 structure claims).
        """
        counts: Dict[str, int] = {}
        for ev in self.phases[phase_id].events:
            rec = self.trace.events[ev]
            if rec.execution >= 0:
                name = self.trace.entry(self.trace.executions[rec.execution].entry).name
                counts[name] = counts.get(name, 0) + 1
        return tuple(sorted(counts.items()))

    def steps_by_chare(self) -> Dict[int, Dict[int, int]]:
        """Map chare -> {global step -> event id} (for rendering)."""
        out: Dict[int, Dict[int, int]] = {}
        for ev, step in enumerate(self.step_of_event):
            if step < 0:
                continue
            chare = self.trace.events[ev].chare
            out.setdefault(chare, {})[step] = ev
        return out

    def summary(self) -> Dict[str, object]:
        """Compact description used by examples and experiment logs."""
        return {
            "phases": len(self.phases),
            "application_phases": len(self.application_phases()),
            "runtime_phases": len(self.runtime_phases()),
            "max_step": self.max_step,
            "events": sum(len(p) for p in self.phases),
            "leaps": max((p.leap for p in self.phases), default=-1) + 1,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.summary()
        return (
            f"LogicalStructure(phases={s['phases']}, steps={s['max_step'] + 1}, "
            f"events={s['events']})"
        )
