"""End-to-end logical-structure extraction (Sections 3.1 + 3.2).

The pipeline mirrors the paper's stage order:

1. initial partitions from serial blocks (3.1.1);
2. inter-chare dependency merge + cycle merge (3.1.2, Algorithm 1);
3. serial-block repair + cycle merge (3.1.3, Algorithm 2);
4. orderability enforcement (3.1.4): source-order inference (Algorithm 3),
   leap merge (Algorithm 4), app/runtime ordering, chare-path edges
   (Algorithm 5) — skippable via ``infer=False`` for the Figure 17
   ablation (overlaps are then forced into sequence instead of merged);
5. per-phase event ordering — physical or idealized-replay reordered
   (3.2.1) — and local step assignment (3.2);
6. global offsets from the phase DAG.

MPI-mode traces follow Isaacs et al. [13]: per-process program order
provides the missing dependencies, so stage 4 is unnecessary (Section 3.4)
and runs only when explicitly requested.

Since the resilience rework the stages are a declarative graph
(:class:`~repro.resilience.executor.StageSpec` list) run by the
:class:`~repro.resilience.executor.ResilientExecutor` over a shared
context dict.  Each stage declares its fallback ladder (columnar kernel
failure → python reference; reorder failure → physical-time ordering),
whether it is degradable (a failure past phase finding yields a partial
result instead of losing the run), and the executor adds between-stage
checkpoints (``checkpoint_dir``), per-stage resource guards
(``stage_deadline`` / ``max_rss_mb``), and the
:class:`~repro.resilience.report.DegradationReport` threaded through
:class:`PipelineStats`.  With the default ``on_error="raise"`` the
behavior — including every exception — is the historical one.
"""

from __future__ import annotations

import dataclasses
import time as _time
import warnings
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

if TYPE_CHECKING:  # repro.verify builds on this module; avoid the cycle.
    from repro.verify.stagehooks import StageHook

from repro.core.inference import (
    enforce_chare_paths,
    infer_source_dependencies,
    leap_merge,
    order_overlapping,
)
from repro.core.gcpause import pause_gc
from repro.core.initial import build_initial
from repro.core.leaps import compute_leaps
from repro.core.merges import dependency_merge, repair_merge
from repro.core.reorder import physical_order, reordered_order_mp, reordered_order_task
from repro.core.stepping import assign_global_offsets, assign_local_steps
from repro.core.structure import LogicalStructure, Phase
from repro.resilience.executor import (
    ON_ERROR_MODES,
    ResilientExecutor,
    StageFn,
    StageSpec,
)
from repro.resilience.guard import ResourceGuard
from repro.trace.model import Trace

#: Option fields that instrument or supervise the run without changing
#: the extracted structure: excluded from cache/checkpoint keying.
#: (``on_error`` modes only diverge on *failing* runs, whose results are
#: never cached.)
NON_RESULT_FIELDS = frozenset({
    "hooks",
    "verify",
    "checkpoint_dir",
    "hook_errors",
    "on_error",
    "stage_deadline",
    "max_rss_mb",
    # Shard fan-out parallelism is result-neutral by construction (the
    # stitched absorb flags equal the serial scan's bit for bit).
    "shard_workers",
    # Ingestion mode only governs how a trace is materialized (eager
    # objects vs streamed columns); the streaming kernels are pinned
    # bit-identical, so the same file yields the same structure — and
    # the same cache/checkpoint key — either way.
    "ingest",
})

#: Context keys present before any stage runs (seeded by
#: :func:`extract_logical_structure`); the stage graph's dataflow roots.
SEED_KEYS = frozenset({"trace", "use_columnar", "use_batched"})

#: Condition tokens a :class:`StageSignature` may name.  The concrete
#: predicates close over the run's options, so the declarative graph
#: carries only these symbolic names:
#:
#: * ``"repair"`` — runs when ``options.repair != "off"``;
#: * ``"infer"`` — runs when properties are enforced and ``options.infer``;
#: * ``"enforce"`` — runs when DAG properties are enforced (Section 3.4).
CONDITION_TOKENS = ("", "repair", "infer", "enforce")

#: Fallback-gate tokens: ``"columnar"`` keeps the ladder only when the
#: run actually selected a columnar-family backend (falling back from
#: the python reference to itself would double-report one failure);
#: ``"batched"`` keeps a ladder *rung* only when the run selected the
#: batched backend (per-rung gating via ``StageSignature.ladder_gates``
#: — a plain-columnar run falling back to plain columnar would likewise
#: retry the failing kernel verbatim).
FALLBACK_GATE_TOKENS = ("", "columnar", "batched")


@dataclass(frozen=True)
class StageSignature:
    """Declared dataflow signature of one pipeline stage.

    The signature is pure data — importable without building a pipeline —
    so tooling (``repro lint``'s dataflow rules, docs generators) can
    reason about the stage graph statically.  ``body`` and the second
    element of each ``fallbacks`` entry name the stage-body functions
    defined inside :func:`extract_logical_structure`; the builder
    resolves them by name and fails loudly on a dangling reference.

    ``inputs`` lists every context key the stage (or any of its
    fallbacks) reads; ``outputs`` every key the stage *or any fallback*
    produces or mutates in place (an output that is also an input is an
    in-place update).  The declarations are exhaustive — telemetry keys
    included — because ``repro lint``'s dataflow rules check the stage
    bodies against them: an undeclared read breaks checkpoint resume,
    an undeclared write hides dataflow from downstream reasoning.
    ``requires`` keys are *enforced* by the executor: when one is
    missing — an upstream degradable stage was skipped — the stage is
    skipped too instead of computing on stale defaults.

    ``ladder_gates`` optionally gates individual rungs of ``fallbacks``
    positionally: rung *i* is kept only when its token (empty = always)
    is satisfied, on top of the stage-wide ``fallback_gate``.  This lets
    one declared ladder serve several backends — e.g. the
    ``columnar_batched`` ladder ``batched → columnar → python`` shrinks
    to ``columnar → python`` for a plain-columnar run.
    """

    name: str
    body: str
    inputs: Tuple[str, ...] = ()
    outputs: Tuple[str, ...] = ()
    fallbacks: Tuple[Tuple[str, str], ...] = ()
    degradable: bool = False
    condition: str = ""
    fallback_gate: str = ""
    requires: Tuple[str, ...] = ()
    ladder_gates: Tuple[str, ...] = ()


#: The extraction pipeline as declarative data, in execution order.
#: This is the single source of truth for stage order, dataflow, and
#: degradation policy; :func:`extract_logical_structure` materializes it
#: into :class:`~repro.resilience.executor.StageSpec` objects, and
#: ``repro lint`` statically checks it against the stage bodies.
STAGE_GRAPH: Tuple[StageSignature, ...] = (
    StageSignature(
        "repair", "st_repair",
        inputs=("trace",), outputs=("trace", "repair"),
        condition="repair",
    ),
    StageSignature(
        # The fallback rungs flip "use_batched" / "use_columnar" off so
        # the rest of the run stays on one backend — hence both are
        # outputs.  Downstream merge stages then pick their kernel by
        # duck-typing the state the surviving rung built.
        "initial", "st_initial",
        inputs=("trace", "use_columnar", "use_batched"),
        outputs=("initial", "state", "initial_partitions", "use_columnar",
                 "use_batched"),
        fallbacks=(("columnar", "st_initial_columnar"),
                   ("python_reference", "st_initial_python")),
        fallback_gate="columnar",
        ladder_gates=("batched", ""),
    ),
    StageSignature(
        # The rungs force progressively plainer merge kernels on the
        # *same* state: batched union pass → per-candidate columnar
        # loop → pure-python reference scan.
        "dependency_merge", "st_dependency_merge",
        inputs=("state",), outputs=("state",),
        fallbacks=(("columnar", "st_dependency_merge_columnar"),
                   ("python_reference", "st_dependency_merge_python")),
        fallback_gate="columnar",
        ladder_gates=("batched", ""),
    ),
    StageSignature(
        "repair_merge", "st_repair_merge",
        inputs=("initial", "state"), outputs=("state",),
        fallbacks=(("columnar", "st_repair_merge_columnar"),
                   ("python_reference", "st_repair_merge_python")),
        fallback_gate="columnar",
        ladder_gates=("batched", ""),
    ),
    StageSignature(
        "infer_sources", "st_infer_sources",
        inputs=("state",), outputs=("state",),
        condition="infer",
    ),
    StageSignature(
        "leap_merge", "st_leap_merge",
        inputs=("state",), outputs=("state",),
        condition="infer",
    ),
    StageSignature(
        "order_overlapping", "st_order_overlapping",
        inputs=("state",), outputs=("state",),
        condition="enforce",
    ),
    StageSignature(
        "chare_paths", "st_chare_paths",
        inputs=("state",), outputs=("state",),
        condition="enforce",
    ),
    StageSignature(
        # Besides the phases, this stage seeds safe defaults for every
        # step-assignment key so a degraded run that skips the two
        # degradable stages below still finalizes a partial structure.
        "build_phases", "st_build_phases",
        inputs=("trace", "state", "use_columnar"),
        outputs=("phases", "phase_of_event", "final_phases",
                 "local_step", "step_of_event", "chare_orders"),
        fallbacks=(("python_reference", "st_build_phases_python"),),
    ),
    StageSignature(
        "local_steps", "st_local_steps",
        inputs=("trace", "initial", "state", "phases", "use_columnar"),
        outputs=("local_step", "chare_orders", "local_arr",
                 "local_steps_done"),
        fallbacks=(("python_reference", "st_local_steps_python"),
                   ("physical_order", "st_local_steps_physical")),
        degradable=True,
    ),
    StageSignature(
        "global_steps", "st_global_steps",
        inputs=("trace", "phases", "phase_of_event", "local_step",
                "use_columnar"),
        outputs=("step_of_event",),
        fallbacks=(("python_reference", "st_global_steps_python"),),
        degradable=True,
        requires=("local_steps_done",),
    ),
    StageSignature(
        "finalize", "st_finalize",
        inputs=("trace", "initial", "phases", "phase_of_event",
                "step_of_event", "local_step", "chare_orders"),
        outputs=("structure",),
    ),
)


def build_stage_specs(
    bodies: Dict[str, "StageFn"],
    *,
    enabled: Dict[str, Callable[[dict], bool]],
    fallback_gates: Dict[str, bool],
) -> List[StageSpec]:
    """Materialize :data:`STAGE_GRAPH` into executable :class:`StageSpec`s.

    ``bodies`` maps body-function names to the callables defined for
    this run; ``enabled`` maps condition tokens to predicates; and
    ``fallback_gates`` maps fallback-gate tokens to whether the ladder
    applies.  A signature referencing an unknown body or token is a
    programming error and raises ``LookupError`` immediately.
    """
    specs: List[StageSpec] = []
    for sig in STAGE_GRAPH:
        for _, body_name in ((("", sig.body),) + sig.fallbacks):
            if body_name not in bodies:
                raise LookupError(
                    f"stage {sig.name!r} references unknown body "
                    f"{body_name!r}"
                )
        condition = None
        if sig.condition:
            if sig.condition not in enabled:
                raise LookupError(
                    f"stage {sig.name!r} names unknown condition "
                    f"{sig.condition!r}"
                )
            condition = enabled[sig.condition]
        fallbacks: List[Tuple[str, StageFn]] = []
        if not sig.fallback_gate or fallback_gates.get(sig.fallback_gate):
            for idx, (name, fn) in enumerate(sig.fallbacks):
                gate = (sig.ladder_gates[idx]
                        if idx < len(sig.ladder_gates) else "")
                if gate and not fallback_gates.get(gate):
                    continue
                fallbacks.append((name, bodies[fn]))
        specs.append(StageSpec(
            sig.name, bodies[sig.body],
            inputs=sig.inputs, outputs=sig.outputs,
            fallbacks=fallbacks, degradable=sig.degradable,
            enabled=condition, requires=sig.requires,
        ))
    return specs


@dataclass
class PipelineOptions:
    """Knobs of the extraction pipeline (the paper's ablation axes)."""

    #: "charm" (task model), "mpi" (message passing), or "auto" — read the
    #: trace metadata key ``model`` and default to "charm".
    mode: str = "auto"
    #: "reordered" (Section 3.2.1 idealized replay) or "physical".
    order: str = "reordered"
    #: Run the Section 3.1.4 inference/merging (Figure 17 ablates this).
    infer: bool = True
    #: Force DAG-property enforcement even in MPI mode.
    enforce_properties: Optional[bool] = None
    #: Tie-break for equal-w serial blocks: "chare_id" (paper default) or
    #: "index" (topology-aware, by the invoking chare's array index).
    tie_break: str = "chare_id"
    #: Gap tolerance for absorbing an entry method into a following serial.
    absorb_tolerance: float = 1e-9
    #: Kernel backend: "columnar_batched" (NumPy array kernels plus the
    #: batched union-find merge kernel and PE-sharded initial scan),
    #: "columnar" (NumPy array kernels, per-candidate merges), "python"
    #: (pure reference implementation), or "auto" — columnar_batched
    #: when NumPy is available.  All backends produce bit-identical
    #: structures; the differential harness cross-checks them.
    backend: str = "auto"
    #: Worker processes for the PE-sharded serial-block scan of the
    #: "columnar_batched" backend; None / 0 / 1 keeps the scan
    #: in-process.  Result-neutral by construction — the stitched
    #: per-shard flags equal the serial scan's bit for bit — so it is
    #: excluded from cache and checkpoint keys.
    shard_workers: Optional[int] = None
    #: How :func:`repro.api.extract` materializes a path/stream source:
    #: "chunked" parses fixed-size windows straight into columnar
    #: buffers (streaming, bounded staging memory), "eager" builds the
    #: object-backed trace, "auto" picks chunked when NumPy is
    #: available.  Bit-identical either way (the streaming kernels are
    #: pinned by differential twins), so it is excluded from cache and
    #: checkpoint keys.  Ignored for already-materialized Trace inputs.
    ingest: str = "auto"
    #: Stage instrumentation: one :class:`repro.verify.stagehooks.StageHook`
    #: (an object with an ``on_stage(stage, *, state, structure, seconds)``
    #: method) or a sequence of them, called after every stage with the
    #: live intermediate state.
    hooks: Union[None, "StageHook", Sequence["StageHook"]] = None
    #: Strict mode: install a :class:`repro.verify.stagehooks.StrictVerifier`
    #: that asserts stage postconditions and runs the full invariant suite
    #: on the result, raising ``InvariantViolationError`` on any failure.
    verify: bool = False
    #: Ingestion hardening (:mod:`repro.trace.repair`): "off" trusts the
    #: trace (historical behavior), "warn" detects defects and reports
    #: them (RuntimeWarning + ``PipelineStats.repair``) without touching
    #: the trace, "fix" repairs what is safely repairable and extracts
    #: from the repaired trace.  Affects the result, so it is part of the
    #: batch cache key.
    repair: str = "off"
    #: Stage-failure policy: "raise" (historical fail-fast), "fallback"
    #: (walk each stage's safe-path ladder before giving up), or
    #: "degrade" (additionally skip degradable stages past phase finding
    #: and return a partial result with a DegradationReport).
    on_error: str = "raise"
    #: Directory for atomic between-stage checkpoints; an interrupted
    #: run re-invoked with the same trace + options resumes after its
    #: last completed stage.  None (default) disables checkpointing.
    checkpoint_dir: Optional[str] = None
    #: Wall-clock budget per stage in seconds; a stage exceeding it is
    #: soft-aborted by the watchdog and handled per ``on_error``.
    stage_deadline: Optional[float] = None
    #: Process RSS ceiling in MiB sampled by the watchdog while a stage
    #: runs; a breach soft-aborts the stage instead of riding into OOM.
    max_rss_mb: Optional[float] = None
    #: What to do when a user stage hook raises: "warn" (default) logs a
    #: RuntimeWarning and continues, "raise" aborts extraction
    #: (historical behavior).  ``InvariantViolationError`` from strict
    #: verification always propagates regardless.
    hook_errors: str = "warn"

    def resolve_mode(self, trace: Trace) -> str:
        if self.mode != "auto":
            return self.mode
        return "mpi" if trace.metadata.get("model") == "mpi" else "charm"

    def resolve_backend(self) -> str:
        """Concrete backend for this run ("columnar_batched",
        "columnar", or "python")."""
        from repro.core.columnar import resolve_backend

        return resolve_backend(self.backend)

    def result_token(self) -> str:
        """Canonical string of the result-affecting option fields.

        Fields in :data:`NON_RESULT_FIELDS` instrument the run without
        changing a successful result, so they are excluded; ``backend``
        is resolved so "auto" keys the same as the backend it picks.
        This is the options half of cache and checkpoint keys.
        """
        fields = {
            f.name: getattr(self, f.name)
            for f in dataclasses.fields(self)
            if f.name not in NON_RESULT_FIELDS
        }
        fields["backend"] = self.resolve_backend()
        return repr(sorted(fields.items()))

    def with_overrides(self, **overrides) -> "PipelineOptions":
        """A copy of these options with the given fields replaced.

        The supported way to combine an options object with keyword
        tweaks: ``opts.with_overrides(order="physical")``.  Unknown field
        names raise ``TypeError``.
        """
        names = {f.name for f in dataclasses.fields(self)}
        unknown = set(overrides) - names
        if unknown:
            raise TypeError(
                f"unknown PipelineOptions field(s): {', '.join(sorted(unknown))}"
            )
        return dataclasses.replace(self, **overrides)

    def hook_list(self) -> List["StageHook"]:
        """``hooks`` normalized to a list (one hook, a sequence, or none)."""
        if self.hooks is None:
            return []
        if isinstance(self.hooks, (list, tuple)):
            return list(self.hooks)
        return [self.hooks]


@dataclass
class PipelineStats:
    """Per-stage timings and merge counts (drives Figures 18/19)."""

    initial_partitions: int = 0
    final_phases: int = 0
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    total_seconds: float = 0.0
    #: Concrete backend the run selected ("columnar_batched",
    #: "columnar", or "python").
    backend: str = ""
    #: Kernel family each executed stage actually ran under, by stage
    #: name — "columnar_batched", "columnar", or "python".  Differs from
    #: ``backend`` after a mid-run downgrade by the fallback ladder;
    #: which *rung* of which ladder ran is in ``degradation``.
    stage_backends: Dict[str, str] = field(default_factory=dict)
    #: :meth:`repro.trace.repair.RepairReport.to_dict` of the ingestion
    #: repair pass, or None when ``options.repair == "off"``.
    repair: Optional[Dict[str, object]] = None
    #: :meth:`repro.resilience.report.DegradationReport.to_dict` of the
    #: run — which stages fell back, degraded, resumed, or breached.
    degradation: Optional[Dict[str, object]] = None
    #: Checkpoint telemetry (dir, key, resumed stage count) when
    #: ``options.checkpoint_dir`` is set.
    checkpoint: Optional[Dict[str, object]] = None


def _columnar():
    from repro.core import columnar

    return columnar


def _checkpoint_key(trace: Trace, opts: PipelineOptions) -> str:
    # Imported lazily: repro.batch builds on this module.
    from repro.batch import trace_digest
    from repro.resilience.checkpoint import checkpoint_key

    return checkpoint_key(trace_digest(trace), opts.result_token())


def extract_logical_structure(
    trace: Trace,
    options: Optional[PipelineOptions] = None,
    stats: Optional[PipelineStats] = None,
    **kwargs,
) -> LogicalStructure:
    """Recover the logical structure of ``trace``.

    Keyword arguments are a shorthand for :class:`PipelineOptions` fields,
    e.g. ``extract_logical_structure(trace, order="physical")``.
    Combining an ``options`` object with keyword overrides was
    deprecated and now raises ``TypeError`` — call
    ``options.with_overrides(**kwargs)`` yourself.  Pass a
    :class:`PipelineStats` to collect per-stage timings.
    """
    if options is not None and kwargs:
        raise TypeError(
            "extract_logical_structure() takes either an options object "
            "or keyword overrides, not both; use "
            "options.with_overrides(**kwargs)"
        )
    if options is not None:
        opts = options
    else:
        opts = PipelineOptions(**kwargs)
    if opts.order not in ("reordered", "physical"):
        raise ValueError(f"unknown order {opts.order!r}")
    if opts.repair not in ("off", "warn", "fix"):
        raise ValueError(f"unknown repair mode {opts.repair!r}")
    if opts.on_error not in ON_ERROR_MODES:
        raise ValueError(f"unknown on_error mode {opts.on_error!r}")
    if opts.hook_errors not in ("raise", "warn"):
        raise ValueError(f"unknown hook_errors mode {opts.hook_errors!r}")
    if opts.ingest not in ("eager", "chunked", "auto"):
        raise ValueError(f"unknown ingest mode {opts.ingest!r}")
    mode = opts.resolve_mode(trace)
    backend = opts.resolve_backend()
    stats = stats if stats is not None else PipelineStats()
    stats.backend = backend
    t0 = _time.perf_counter()  # repro-lint: disable=DET001 reason=PipelineStats timing telemetry, excluded from result keys

    hook_list = opts.hook_list()
    if opts.verify:
        # Imported lazily: repro.verify builds on this module.
        from repro.verify.stagehooks import StrictVerifier

        hook_list.append(StrictVerifier())
    from repro.verify.invariants import InvariantViolationError

    # Reordered MPI stepping relaxes the per-process chain so receives
    # can float to their logical wave (Section 3.2.1, Figure 10).
    relaxed = mode == "mpi" and opts.order == "reordered"
    # The strict message-passing chain makes every process a single path
    # through the DAG, so enforcement is unnecessary (Section 3.4); the
    # relaxed chain of reordered MPI mode reintroduces same-leap
    # overlaps and needs it.
    enforce = opts.enforce_properties
    if enforce is None:
        enforce = mode == "charm" or relaxed

    # ------------------------------------------------------------------
    # Stage bodies.  Each mutates the shared context dict; the context
    # holds only picklable data (no modules, hooks, or options) so the
    # executor can snapshot it for fallback restore and checkpoints.
    # ------------------------------------------------------------------
    def st_repair(ctx: dict) -> None:
        from repro.trace.repair import repair_trace, warn_on_defects

        repaired, report = repair_trace(ctx["trace"], mode=opts.repair)
        ctx["trace"] = repaired
        ctx["repair"] = report.to_dict()
        warn_on_defects(report, stacklevel=3)

    def _set_initial(ctx: dict, initial) -> None:
        ctx["initial"] = initial
        ctx["state"] = initial.state
        ctx["initial_partitions"] = len(initial.state.init_events)

    def st_initial(ctx: dict) -> None:
        # A chunk-ingested trace advertises its ingest window; the
        # columnar kernels then fold the scan window by window
        # (bit-identical to the whole-array pass by construction).
        window = getattr(ctx["trace"], "ingest_window", None)
        if ctx["use_batched"]:
            initial = _columnar().build_initial_batched(
                ctx["trace"], mode=mode,
                absorb_tolerance=opts.absorb_tolerance,
                relaxed_chain=relaxed,
                shard_workers=opts.shard_workers,
                window=window,
            )
        elif ctx["use_columnar"]:
            initial = _columnar().build_initial_columnar(
                ctx["trace"], mode=mode,
                absorb_tolerance=opts.absorb_tolerance,
                relaxed_chain=relaxed,
                window=window,
            )
        else:
            initial = build_initial(
                ctx["trace"], mode=mode,
                absorb_tolerance=opts.absorb_tolerance,
                relaxed_chain=relaxed,
            )
        _set_initial(ctx, initial)

    def st_initial_columnar(ctx: dict) -> None:
        # Batched kernel unusable for this trace: the whole run
        # continues on the plain columnar backend (downstream merge
        # stages duck-type their kernel off the state built here).
        ctx["use_batched"] = False
        _set_initial(ctx, _columnar().build_initial_columnar(
            ctx["trace"], mode=mode, absorb_tolerance=opts.absorb_tolerance,
            relaxed_chain=relaxed,
            window=getattr(ctx["trace"], "ingest_window", None),
        ))

    def st_initial_python(ctx: dict) -> None:
        # Columnar kernels unusable for this trace: the whole run
        # continues on the python reference implementation.
        ctx["use_batched"] = False
        ctx["use_columnar"] = False
        _set_initial(ctx, build_initial(
            ctx["trace"], mode=mode, absorb_tolerance=opts.absorb_tolerance,
            relaxed_chain=relaxed,
        ))

    def st_dependency_merge(ctx: dict) -> None:
        dependency_merge(ctx["state"])

    def st_dependency_merge_columnar(ctx: dict) -> None:
        # Batched union kernel failed mid-stage: the executor restored
        # the pre-stage state snapshot, so rerun with per-candidate
        # columnar unions on the same state.
        dependency_merge(ctx["state"], use_batched=False)

    def st_dependency_merge_python(ctx: dict) -> None:
        dependency_merge(ctx["state"], use_fast_path=False)

    def st_repair_merge(ctx: dict) -> None:
        repair_merge(ctx["initial"])

    def st_repair_merge_columnar(ctx: dict) -> None:
        repair_merge(ctx["initial"], use_batched=False)

    def st_repair_merge_python(ctx: dict) -> None:
        repair_merge(ctx["initial"], use_fast_path=False)

    def st_infer_sources(ctx: dict) -> None:
        infer_source_dependencies(ctx["state"])

    def st_leap_merge(ctx: dict) -> None:
        leap_merge(ctx["state"])

    def st_order_overlapping(ctx: dict) -> None:
        order_overlapping(ctx["state"], cross_class_only=opts.infer)

    def st_chare_paths(ctx: dict) -> None:
        enforce_chare_paths(ctx["state"])

    def _build_phases(ctx: dict, use_columnar: bool) -> None:
        state = ctx["state"]
        events = ctx["trace"].events
        # The leap values feed a totally-ordered sort key, so the
        # columnar kernel's different dict order is safe here (it is NOT
        # safe inside the inference stages, which keep the python
        # compute_leaps).
        if use_columnar:
            leaps = _columnar().compute_leaps_columnar(state)
        else:
            leaps = compute_leaps(state)
        succs, preds = state.adjacency()
        part_events = state.partition_events()
        # partition_events lists are (time, id)-sorted: the first event
        # holds the minimum time.
        roots = sorted(
            part_events,
            key=lambda r: (leaps[r],
                           events[part_events[r][0]].time if part_events[r] else 0.0,
                           r),
        )
        phase_index = {root: i for i, root in enumerate(roots)}
        phases: List[Phase] = []
        for root in roots:
            evs = part_events[root]
            phases.append(
                Phase(
                    id=phase_index[root],
                    events=evs,
                    chares={events[e].chare for e in evs},
                    is_runtime=state.is_runtime(root),
                    leap=leaps[root],
                    preds={phase_index[q] for q in preds[root]},
                    succs={phase_index[q] for q in succs[root]},
                )
            )
        ctx["phases"] = phases
        ctx["final_phases"] = len(phases)
        # Defaults the step-assignment stages overwrite; a degraded run
        # that skips them still returns a valid partial structure.
        phase_of_event = [-1] * len(events)
        for phase in phases:
            for ev in phase.events:
                phase_of_event[ev] = phase.id
        ctx["phase_of_event"] = phase_of_event
        ctx["local_step"] = [-1] * len(events)
        ctx["step_of_event"] = [-1] * len(events)
        ctx["chare_orders"] = {}

    def st_build_phases(ctx: dict) -> None:
        _build_phases(ctx, use_columnar=ctx["use_columnar"])

    def st_build_phases_python(ctx: dict) -> None:
        _build_phases(ctx, use_columnar=False)

    def _local_steps_columnar(ctx: dict) -> None:
        col = _columnar()
        np = col.np
        trace_, initial, state = ctx["trace"], ctx["initial"], ctx["state"]
        table = col.EventTable.of(trace_)
        block_table = getattr(state, "block_table", None)
        boe_arr = (block_table.block_of_event if block_table is not None
                   else np.asarray(initial.block_of_event, np.int64))
        local_arr = np.full(len(trace_.events), -1, np.int64)
        chare_orders: Dict[Tuple[int, int], List[int]] = {}
        if opts.order != "physical" and mode != "mpi":
            if opts.tie_break not in ("chare_id", "index"):
                raise ValueError(f"unknown tie_break {opts.tie_break!r}")
            if opts.tie_break == "index":
                inv_keys = [tuple(c.index) if c.index else (c.id,)
                            for c in trace_.chares]
            else:
                inv_keys = [(c.id,) for c in trace_.chares]
        for phase in ctx["phases"]:
            ordered_np = col.sorted_phase_events(table, phase.events)
            if opts.order == "physical":
                orders = col.physical_order_columnar(table, ordered_np)
            elif mode == "mpi":
                orders = reordered_order_mp(
                    trace_, phase.events, initial.block_of_event,
                    _ordered=ordered_np.tolist(),
                )
            else:
                orders = col.task_order_columnar(
                    table, ordered_np, boe_arr, inv_keys
                )
            for chare, order in orders.items():
                chare_orders[(phase.id, chare)] = order
            result = col.local_steps_columnar(table, orders)
            if result is None:  # suspected cycle: python reference fallback
                steps, max_s = assign_local_steps(trace_, phase.events, orders)
                for ev, s in steps.items():
                    local_arr[ev] = s
            else:
                step_events, step_values, max_s = result
                local_arr[step_events] = step_values
            phase.max_local_step = max_s
        ctx["local_step"] = local_arr.tolist()
        ctx["local_arr"] = local_arr
        ctx["chare_orders"] = chare_orders
        ctx["local_steps_done"] = True

    def _local_steps_python(ctx: dict, physical: bool) -> None:
        trace_, initial = ctx["trace"], ctx["initial"]
        local_step = [-1] * len(trace_.events)
        chare_orders: Dict[Tuple[int, int], List[int]] = {}
        for phase in ctx["phases"]:
            if physical:
                orders = physical_order(trace_, phase.events)
            elif mode == "mpi":
                orders = reordered_order_mp(trace_, phase.events,
                                            initial.block_of_event)
            else:
                orders = reordered_order_task(
                    trace_, phase.events, initial.block_of_event,
                    tie_break=opts.tie_break,
                )
            for chare, order in orders.items():
                chare_orders[(phase.id, chare)] = order
            steps, max_s = assign_local_steps(trace_, phase.events, orders)
            for ev, s in steps.items():
                local_step[ev] = s
            phase.max_local_step = max_s
        ctx["local_step"] = local_step
        ctx.pop("local_arr", None)
        ctx["chare_orders"] = chare_orders
        ctx["local_steps_done"] = True

    def st_local_steps(ctx: dict) -> None:
        if ctx["use_columnar"]:
            _local_steps_columnar(ctx)
        else:
            _local_steps_python(ctx, physical=opts.order == "physical")

    def st_local_steps_python(ctx: dict) -> None:
        _local_steps_python(ctx, physical=opts.order == "physical")

    def st_local_steps_physical(ctx: dict) -> None:
        # Last-resort ordering: physical time needs no inference and no
        # reorder fixed point, so it survives inputs the idealized
        # replay cannot.
        _local_steps_python(ctx, physical=True)

    def _global_steps(ctx: dict, use_columnar: bool) -> None:
        phases = ctx["phases"]
        max_local = {p.id: p.max_local_step for p in phases}
        offsets = assign_global_offsets(
            [p.id for p in phases], {p.id: p.preds for p in phases}, max_local
        )
        for phase in phases:
            phase.offset = offsets[phase.id]
        local_arr = ctx.get("local_arr")
        if use_columnar and local_arr is not None and phases:
            np = _columnar().np
            offset_arr = np.fromiter((p.offset for p in phases), np.int64,
                                     len(phases))
            phase_arr = np.asarray(ctx["phase_of_event"], np.int64)
            in_phase = phase_arr >= 0
            step_arr = np.where(
                in_phase, offset_arr[np.clip(phase_arr, 0, None)] + local_arr,
                -1,
            )
            ctx["step_of_event"] = step_arr.tolist()
        else:
            step_of_event = [-1] * len(ctx["trace"].events)
            local_step = ctx["local_step"]
            for phase in phases:
                for ev in phase.events:
                    step_of_event[ev] = phase.offset + local_step[ev]
            ctx["step_of_event"] = step_of_event

    def st_global_steps(ctx: dict) -> None:
        _global_steps(ctx, use_columnar=ctx["use_columnar"])

    def st_global_steps_python(ctx: dict) -> None:
        _global_steps(ctx, use_columnar=False)

    def st_finalize(ctx: dict) -> None:
        initial = ctx["initial"]
        ctx["structure"] = LogicalStructure(
            trace=ctx["trace"],
            phases=ctx["phases"],
            phase_of_event=ctx["phase_of_event"],
            step_of_event=ctx["step_of_event"],
            local_step_of_event=ctx["local_step"],
            chare_orders=ctx["chare_orders"],
            blocks=initial.blocks,
            block_of_event=initial.block_of_event,
            block_of_exec=initial.block_of_exec,
            options=opts,
        )

    # ------------------------------------------------------------------
    # Materialize the declarative graph.  Fallback ladders implement the
    # degradation matrix in docs/ROBUSTNESS.md; only the step-assignment
    # stages are degradable (a failure before phases exist has nothing
    # to salvage).
    # ------------------------------------------------------------------
    bodies: Dict[str, StageFn] = {
        fn.__name__: fn
        for fn in (
            st_repair, st_initial, st_initial_columnar, st_initial_python,
            st_dependency_merge, st_dependency_merge_columnar,
            st_dependency_merge_python, st_repair_merge,
            st_repair_merge_columnar, st_repair_merge_python,
            st_infer_sources, st_leap_merge,
            st_order_overlapping, st_chare_paths, st_build_phases,
            st_build_phases_python, st_local_steps, st_local_steps_python,
            st_local_steps_physical, st_global_steps, st_global_steps_python,
            st_finalize,
        )
    }
    use_columnar = backend != "python"
    use_batched = backend == "columnar_batched"
    stages = build_stage_specs(
        bodies,
        enabled={
            "repair": lambda ctx: opts.repair != "off",
            "infer": lambda ctx: enforce and opts.infer,
            "enforce": lambda ctx: enforce,
        },
        fallback_gates={"columnar": use_columnar, "batched": use_batched},
    )

    def observer(stage: str, seconds: float, ctx: dict) -> None:
        stats.stage_seconds[stage] = (
            stats.stage_seconds.get(stage, 0.0) + seconds
        )
        stats.stage_backends[stage] = (
            "columnar_batched" if ctx.get("use_batched")
            else "columnar" if ctx.get("use_columnar") else "python"
        )
        structure = ctx.get("structure") if stage == "finalize" else None
        state = None if structure is not None else ctx.get("state")
        for hook in hook_list:
            try:
                hook.on_stage(stage, state=state, structure=structure,
                              seconds=seconds)
            except InvariantViolationError:
                raise  # strict verification: the designed failure signal
            except Exception as exc:
                if opts.hook_errors == "raise":
                    raise
                warnings.warn(
                    f"stage hook {type(hook).__name__} failed on stage "
                    f"{stage!r}: {type(exc).__name__}: {exc} "
                    f"(hook_errors='warn': continuing)",
                    RuntimeWarning,
                    stacklevel=2,
                )

    checkpoint_dir = opts.checkpoint_dir
    key = ""
    if checkpoint_dir is not None:
        key = _checkpoint_key(trace, opts)

    executor = ResilientExecutor(
        stages,
        on_error=opts.on_error,
        guard=ResourceGuard(opts.stage_deadline, opts.max_rss_mb),
        checkpoint_dir=(str(checkpoint_dir) if checkpoint_dir is not None
                        else None),
        checkpoint_key=key,
        observer=observer,
    )
    ctx: Dict[str, object] = {
        "trace": trace,
        "use_columnar": use_columnar,
        "use_batched": use_batched,
    }
    # The cyclic collector does pure wasted work during extraction (the
    # kernels allocate bursts of acyclic short-lived objects while the
    # whole trace heap sits in the old generations — see
    # :mod:`repro.core.gcpause` for the quadratic this caused).  The
    # python reference backend keeps the historical collector behavior.
    with pause_gc(backend != "python"):
        report = executor.run(ctx)

    structure: LogicalStructure = ctx["structure"]
    structure.degradation = report
    stats.initial_partitions = ctx.get("initial_partitions", 0)
    stats.final_phases = ctx.get("final_phases", 0)
    stats.repair = ctx.get("repair")
    for outcome in report.outcomes:
        if outcome.resumed:
            stats.stage_seconds.setdefault(outcome.stage, outcome.seconds)
    stats.degradation = report.to_dict()
    if checkpoint_dir is not None:
        stats.checkpoint = {
            "dir": str(checkpoint_dir),
            "key": key,
            "resumed_stages": sum(
                1 for o in report.outcomes if o.resumed
            ),
        }
    stats.total_seconds = _time.perf_counter() - t0  # repro-lint: disable=DET001 reason=PipelineStats timing telemetry, excluded from result keys
    return structure
