"""End-to-end logical-structure extraction (Sections 3.1 + 3.2).

The pipeline mirrors the paper's stage order:

1. initial partitions from serial blocks (3.1.1);
2. inter-chare dependency merge + cycle merge (3.1.2, Algorithm 1);
3. serial-block repair + cycle merge (3.1.3, Algorithm 2);
4. orderability enforcement (3.1.4): source-order inference (Algorithm 3),
   leap merge (Algorithm 4), app/runtime ordering, chare-path edges
   (Algorithm 5) — skippable via ``infer=False`` for the Figure 17
   ablation (overlaps are then forced into sequence instead of merged);
5. per-phase event ordering — physical or idealized-replay reordered
   (3.2.1) — and local step assignment (3.2);
6. global offsets from the phase DAG.

MPI-mode traces follow Isaacs et al. [13]: per-process program order
provides the missing dependencies, so stage 4 is unnecessary (Section 3.4)
and runs only when explicitly requested.
"""

from __future__ import annotations

import dataclasses
import time as _time
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple, Union

if TYPE_CHECKING:  # repro.verify builds on this module; avoid the cycle.
    from repro.verify.stagehooks import StageHook

from repro.core.initial import build_initial
from repro.core.inference import (
    enforce_chare_paths,
    infer_source_dependencies,
    leap_merge,
    order_overlapping,
)
from repro.core.leaps import compute_leaps
from repro.core.merges import cycle_merge, dependency_merge, repair_merge
from repro.core.reorder import physical_order, reordered_order_mp, reordered_order_task
from repro.core.stepping import assign_global_offsets, assign_local_steps
from repro.core.structure import LogicalStructure, Phase
from repro.trace.model import Trace


@dataclass
class PipelineOptions:
    """Knobs of the extraction pipeline (the paper's ablation axes)."""

    #: "charm" (task model), "mpi" (message passing), or "auto" — read the
    #: trace metadata key ``model`` and default to "charm".
    mode: str = "auto"
    #: "reordered" (Section 3.2.1 idealized replay) or "physical".
    order: str = "reordered"
    #: Run the Section 3.1.4 inference/merging (Figure 17 ablates this).
    infer: bool = True
    #: Force DAG-property enforcement even in MPI mode.
    enforce_properties: Optional[bool] = None
    #: Tie-break for equal-w serial blocks: "chare_id" (paper default) or
    #: "index" (topology-aware, by the invoking chare's array index).
    tie_break: str = "chare_id"
    #: Gap tolerance for absorbing an entry method into a following serial.
    absorb_tolerance: float = 1e-9
    #: Kernel backend: "columnar" (NumPy array kernels), "python" (pure
    #: reference implementation), or "auto" — columnar when NumPy is
    #: available.  Both backends produce bit-identical structures; the
    #: differential harness cross-checks them.
    backend: str = "auto"
    #: Stage instrumentation: one :class:`repro.verify.stagehooks.StageHook`
    #: (an object with an ``on_stage(stage, *, state, structure, seconds)``
    #: method) or a sequence of them, called after every stage with the
    #: live intermediate state.
    hooks: Union[None, "StageHook", Sequence["StageHook"]] = None
    #: Strict mode: install a :class:`repro.verify.stagehooks.StrictVerifier`
    #: that asserts stage postconditions and runs the full invariant suite
    #: on the result, raising ``InvariantViolationError`` on any failure.
    verify: bool = False
    #: Ingestion hardening (:mod:`repro.trace.repair`): "off" trusts the
    #: trace (historical behavior), "warn" detects defects and reports
    #: them (RuntimeWarning + ``PipelineStats.repair``) without touching
    #: the trace, "fix" repairs what is safely repairable and extracts
    #: from the repaired trace.  Affects the result, so it is part of the
    #: batch cache key.
    repair: str = "off"

    def resolve_mode(self, trace: Trace) -> str:
        if self.mode != "auto":
            return self.mode
        return "mpi" if trace.metadata.get("model") == "mpi" else "charm"

    def resolve_backend(self) -> str:
        """Concrete backend for this run ("columnar" or "python")."""
        from repro.core.columnar import resolve_backend

        return resolve_backend(self.backend)

    def with_overrides(self, **overrides) -> "PipelineOptions":
        """A copy of these options with the given fields replaced.

        The supported way to combine an options object with keyword
        tweaks: ``opts.with_overrides(order="physical")``.  Unknown field
        names raise ``TypeError``.
        """
        names = {f.name for f in dataclasses.fields(self)}
        unknown = set(overrides) - names
        if unknown:
            raise TypeError(
                f"unknown PipelineOptions field(s): {', '.join(sorted(unknown))}"
            )
        return dataclasses.replace(self, **overrides)

    def hook_list(self) -> List["StageHook"]:
        """``hooks`` normalized to a list (one hook, a sequence, or none)."""
        if self.hooks is None:
            return []
        if isinstance(self.hooks, (list, tuple)):
            return list(self.hooks)
        return [self.hooks]


@dataclass
class PipelineStats:
    """Per-stage timings and merge counts (drives Figures 18/19)."""

    initial_partitions: int = 0
    final_phases: int = 0
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    total_seconds: float = 0.0
    #: Concrete backend the run used ("columnar" or "python").
    backend: str = ""
    #: :meth:`repro.trace.repair.RepairReport.to_dict` of the ingestion
    #: repair pass, or None when ``options.repair == "off"``.
    repair: Optional[Dict[str, object]] = None


def extract_logical_structure(
    trace: Trace,
    options: Optional[PipelineOptions] = None,
    stats: Optional[PipelineStats] = None,
    **kwargs,
) -> LogicalStructure:
    """Recover the logical structure of ``trace``.

    Keyword arguments are a shorthand for :class:`PipelineOptions` fields,
    e.g. ``extract_logical_structure(trace, order="physical")``.  When an
    ``options`` object is also given, the keywords override its fields via
    :meth:`PipelineOptions.with_overrides` (deprecated — call it
    yourself).  Pass a :class:`PipelineStats` to collect per-stage
    timings.
    """
    if options is not None and kwargs:
        warnings.warn(
            "passing both options and keyword overrides to "
            "extract_logical_structure is deprecated; use "
            "options.with_overrides(**kwargs)",
            DeprecationWarning,
            stacklevel=2,
        )
        opts = options.with_overrides(**kwargs)
    elif options is not None:
        opts = options
    else:
        opts = PipelineOptions(**kwargs)
    if opts.order not in ("reordered", "physical"):
        raise ValueError(f"unknown order {opts.order!r}")
    if opts.repair not in ("off", "warn", "fix"):
        raise ValueError(f"unknown repair mode {opts.repair!r}")
    mode = opts.resolve_mode(trace)
    backend = opts.resolve_backend()
    stats = stats if stats is not None else PipelineStats()
    stats.backend = backend
    t0 = _time.perf_counter()

    hook_list = opts.hook_list()
    if opts.verify:
        # Imported lazily: repro.verify builds on this module.
        from repro.verify.stagehooks import StrictVerifier

        hook_list.append(StrictVerifier())

    current_state = [None]  # set once stage 1 has built the partition state

    def _stage(name: str, start: float, structure: Optional[LogicalStructure] = None) -> float:
        now = _time.perf_counter()
        seconds = now - start
        stats.stage_seconds[name] = stats.stage_seconds.get(name, 0.0) + seconds
        for hook in hook_list:
            hook.on_stage(
                name,
                state=current_state[0] if structure is None else None,
                structure=structure,
                seconds=seconds,
            )
        return now

    # Stage 0: ingestion hardening (repro.trace.repair).  "warn" detects
    # and reports; "fix" also extracts from the repaired trace.  Runs
    # before anything reads the trace so every later stage (and the
    # returned structure) sees the repaired records.
    t = t0
    if opts.repair != "off":
        from repro.trace.repair import repair_trace, warn_on_defects

        trace, repair_report = repair_trace(trace, mode=opts.repair)
        stats.repair = repair_report.to_dict()
        warn_on_defects(repair_report, stacklevel=3)
        t = _stage("repair", t)

    # Stage 1: initial partitions.  Reordered MPI stepping relaxes the
    # per-process chain so receives can float to their logical wave
    # (Section 3.2.1, Figure 10).
    relaxed = mode == "mpi" and opts.order == "reordered"
    if backend == "columnar":
        from repro.core import columnar as _col

        initial = _col.build_initial_columnar(
            trace, mode=mode, absorb_tolerance=opts.absorb_tolerance,
            relaxed_chain=relaxed,
        )
    else:
        _col = None
        initial = build_initial(
            trace, mode=mode, absorb_tolerance=opts.absorb_tolerance,
            relaxed_chain=relaxed,
        )
    state = initial.state
    current_state[0] = state
    stats.initial_partitions = len(state.init_events)
    t = _stage("initial", t)

    # Stage 2: dependency merge (Algorithm 1).
    dependency_merge(state)
    t = _stage("dependency_merge", t)

    # Stage 3: serial-block repair (Algorithm 2).
    repair_merge(initial)
    t = _stage("repair_merge", t)

    # Stage 4: orderability (Section 3.1.4).  The strict message-passing
    # chain makes every process a single path through the DAG, so
    # enforcement is unnecessary (Section 3.4); the relaxed chain of
    # reordered MPI mode reintroduces same-leap overlaps and needs it.
    enforce = opts.enforce_properties
    if enforce is None:
        enforce = mode == "charm" or relaxed
    if enforce:
        if opts.infer:
            infer_source_dependencies(state)
            t = _stage("infer_sources", t)
            leap_merge(state)
            t = _stage("leap_merge", t)
            order_overlapping(state, cross_class_only=True)
            t = _stage("order_overlapping", t)
        else:
            order_overlapping(state, cross_class_only=False)
            t = _stage("order_overlapping", t)
        enforce_chare_paths(state)
        t = _stage("chare_paths", t)

    # Build the phase objects.  The leap values feed a totally-ordered
    # sort key, so the columnar kernel's different dict order is safe here
    # (it is NOT safe inside the inference stages, which keep the python
    # compute_leaps).
    if _col is not None:
        leaps = _col.compute_leaps_columnar(state)
    else:
        leaps = compute_leaps(state)
    succs, preds = state.adjacency()
    part_events = state.partition_events()
    events = trace.events
    # partition_events lists are (time, id)-sorted: the first event holds
    # the minimum time.
    roots = sorted(
        part_events,
        key=lambda r: (leaps[r],
                       events[part_events[r][0]].time if part_events[r] else 0.0,
                       r),
    )
    phase_index = {root: i for i, root in enumerate(roots)}
    phases: List[Phase] = []
    for root in roots:
        evs = part_events[root]
        phases.append(
            Phase(
                id=phase_index[root],
                events=evs,
                chares={events[e].chare for e in evs},
                is_runtime=state.is_runtime(root),
                leap=leaps[root],
                preds={phase_index[q] for q in preds[root]},
                succs={phase_index[q] for q in succs[root]},
            )
        )
    stats.final_phases = len(phases)
    t = _stage("build_phases", t)

    # Stage 5: per-phase ordering + local steps.
    chare_orders: Dict[Tuple[int, int], List[int]] = {}
    max_local: Dict[int, int] = {}
    if _col is not None:
        np = _col.np
        table = _col.EventTable.of(trace)
        block_table = getattr(state, "block_table", None)
        boe_arr = (block_table.block_of_event if block_table is not None
                   else np.asarray(initial.block_of_event, np.int64))
        phase_arr = np.full(len(events), -1, np.int64)
        local_arr = np.full(len(events), -1, np.int64)
        if opts.order != "physical" and mode != "mpi":
            if opts.tie_break not in ("chare_id", "index"):
                raise ValueError(f"unknown tie_break {opts.tie_break!r}")
            if opts.tie_break == "index":
                inv_keys = [tuple(c.index) if c.index else (c.id,)
                            for c in trace.chares]
            else:
                inv_keys = [(c.id,) for c in trace.chares]
        for phase in phases:
            ordered_np = _col.sorted_phase_events(table, phase.events)
            if len(ordered_np):
                phase_arr[ordered_np] = phase.id
            if opts.order == "physical":
                orders = _col.physical_order_columnar(table, ordered_np)
            elif mode == "mpi":
                orders = reordered_order_mp(
                    trace, phase.events, initial.block_of_event,
                    _ordered=ordered_np.tolist(),
                )
            else:
                orders = _col.task_order_columnar(
                    table, ordered_np, boe_arr, inv_keys
                )
            for chare, order in orders.items():
                chare_orders[(phase.id, chare)] = order
            result = _col.local_steps_columnar(table, orders)
            if result is None:  # suspected cycle: python reference fallback
                steps, max_s = assign_local_steps(trace, phase.events, orders)
                for ev, s in steps.items():
                    local_arr[ev] = s
            else:
                step_events, step_values, max_s = result
                local_arr[step_events] = step_values
            phase.max_local_step = max_s
            max_local[phase.id] = max_s
        phase_of_event = phase_arr.tolist()
        local_step = local_arr.tolist()
    else:
        phase_of_event = [-1] * len(events)
        local_step = [-1] * len(events)
        for phase in phases:
            for ev in phase.events:
                phase_of_event[ev] = phase.id
            if opts.order == "physical":
                orders = physical_order(trace, phase.events)
            elif mode == "mpi":
                orders = reordered_order_mp(trace, phase.events,
                                            initial.block_of_event)
            else:
                orders = reordered_order_task(
                    trace, phase.events, initial.block_of_event,
                    tie_break=opts.tie_break,
                )
            for chare, order in orders.items():
                chare_orders[(phase.id, chare)] = order
            steps, max_s = assign_local_steps(trace, phase.events, orders)
            for ev, s in steps.items():
                local_step[ev] = s
            phase.max_local_step = max_s
            max_local[phase.id] = max_s
    t = _stage("local_steps", t)

    # Stage 6: global offsets.
    offsets = assign_global_offsets(
        [p.id for p in phases], {p.id: p.preds for p in phases}, max_local
    )
    for phase in phases:
        phase.offset = offsets[phase.id]
    if _col is not None and phases:
        np = _col.np
        offset_arr = np.fromiter((p.offset for p in phases), np.int64,
                                 len(phases))
        in_phase = phase_arr >= 0
        step_arr = np.where(
            in_phase, offset_arr[np.clip(phase_arr, 0, None)] + local_arr, -1
        )
        step_of_event = step_arr.tolist()
    else:
        step_of_event = [-1] * len(events)
        for phase in phases:
            for ev in phase.events:
                step_of_event[ev] = phase.offset + local_step[ev]
    t = _stage("global_steps", t)

    structure = LogicalStructure(
        trace=trace,
        phases=phases,
        phase_of_event=phase_of_event,
        step_of_event=step_of_event,
        local_step_of_event=local_step,
        chare_orders=chare_orders,
        blocks=initial.blocks,
        block_of_event=initial.block_of_event,
        block_of_exec=initial.block_of_exec,
        options=opts,
    )
    t = _stage("finalize", t, structure=structure)
    stats.total_seconds = _time.perf_counter() - t0
    return structure
