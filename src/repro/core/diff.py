"""Comparing logical structures across runs.

The logical structure abstracts away physical-time noise, which makes it a
natural basis for *run-to-run comparison*: two executions of the same
program (different seeds, machines, or code versions) should produce the
same phase skeleton, and differences in per-phase cost localize a
regression to a phase the developer can name.  This module aligns two
structures phase-by-phase (by entry-method signature sequence, using a
longest-common-subsequence alignment) and reports structural and timing
deltas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.patterns import signature_sequence
from repro.core.structure import LogicalStructure
from repro.metrics.duration import sub_block_durations


@dataclass
class PhaseDelta:
    """One aligned phase pair (or an unmatched phase)."""

    #: Phase ids in the two structures; None marks an unmatched phase.
    left: Optional[int]
    right: Optional[int]
    signature: Tuple = ()
    #: Steps the phase spans in each structure.
    steps_left: int = 0
    steps_right: int = 0
    #: Total sub-block duration in each structure.
    time_left: float = 0.0
    time_right: float = 0.0

    @property
    def matched(self) -> bool:
        return self.left is not None and self.right is not None

    @property
    def time_ratio(self) -> float:
        """right/left duration ratio (inf when left is zero)."""
        if self.time_left <= 0:
            return float("inf") if self.time_right > 0 else 1.0
        return self.time_right / self.time_left


@dataclass
class StructureDiff:
    """Alignment of two logical structures."""

    deltas: List[PhaseDelta] = field(default_factory=list)

    @property
    def matched(self) -> List[PhaseDelta]:
        return [d for d in self.deltas if d.matched]

    @property
    def only_left(self) -> List[PhaseDelta]:
        return [d for d in self.deltas if d.right is None]

    @property
    def only_right(self) -> List[PhaseDelta]:
        return [d for d in self.deltas if d.left is None]

    def similarity(self) -> float:
        """Fraction of phases participating in the alignment (0..1)."""
        if not self.deltas:
            return 1.0
        return 2 * len(self.matched) / (
            2 * len(self.matched) + len(self.only_left) + len(self.only_right)
        )

    def worst_regressions(self, n: int = 5) -> List[PhaseDelta]:
        """Matched phases with the largest right/left time growth."""
        return sorted(self.matched, key=lambda d: -d.time_ratio)[:n]


def _phase_times(structure: LogicalStructure) -> Dict[int, float]:
    durations = sub_block_durations(structure)
    out: Dict[int, float] = {}
    for ev, dur in durations.items():
        phase = structure.phase_of_event[ev]
        if phase >= 0:
            out[phase] = out.get(phase, 0.0) + dur
    return out


def diff_structures(left: LogicalStructure, right: LogicalStructure) -> StructureDiff:
    """Align two structures by phase-signature LCS and report deltas.

    Alignment compares the *set* of entry methods per phase rather than
    exact event counts: scheduling noise can move a few events between
    same-kind phases (e.g. a reduction forward landing in a different
    manager block) without changing what the phase is.
    """
    lorder = left.phase_sequence()
    rorder = right.phase_sequence()
    lsigs = signature_sequence(left)
    rsigs = signature_sequence(right)
    lkeys = [tuple(sorted(name for name, _ in sig)) for sig in lsigs]
    rkeys = [tuple(sorted(name for name, _ in sig)) for sig in rsigs]

    # Longest common subsequence over signature keys.
    n, m = len(lkeys), len(rkeys)
    table = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(n - 1, -1, -1):
        for j in range(m - 1, -1, -1):
            if lkeys[i] == rkeys[j]:
                table[i][j] = table[i + 1][j + 1] + 1
            else:
                table[i][j] = max(table[i + 1][j], table[i][j + 1])

    ltime = _phase_times(left)
    rtime = _phase_times(right)

    def delta(li: Optional[int], ri: Optional[int]) -> PhaseDelta:
        d = PhaseDelta(
            left=lorder[li] if li is not None else None,
            right=rorder[ri] if ri is not None else None,
            signature=lsigs[li] if li is not None else rsigs[ri],
        )
        if li is not None:
            phase = left.phase(lorder[li])
            d.steps_left = phase.max_local_step + 1
            d.time_left = ltime.get(phase.id, 0.0)
        if ri is not None:
            phase = right.phase(rorder[ri])
            d.steps_right = phase.max_local_step + 1
            d.time_right = rtime.get(phase.id, 0.0)
        return d

    diff = StructureDiff()
    i = j = 0
    while i < n and j < m:
        if lkeys[i] == rkeys[j]:
            diff.deltas.append(delta(i, j))
            i += 1
            j += 1
        elif table[i + 1][j] >= table[i][j + 1]:
            diff.deltas.append(delta(i, None))
            i += 1
        else:
            diff.deltas.append(delta(None, j))
            j += 1
    while i < n:
        diff.deltas.append(delta(i, None))
        i += 1
    while j < m:
        diff.deltas.append(delta(None, j))
        j += 1
    return diff
