"""Leap computation.

A partition's *leap* is its maximum distance from the beginning of the
partition DAG (Section 3.1.4).  Leaps group partitions that could occupy
the same span of logical time; the two DAG properties the paper enforces
are stated over them.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List

from repro.core.partition import PartitionState


def compute_leaps(state: PartitionState) -> Dict[int, int]:
    """Longest-path depth of every current partition (roots are leap 0).

    Raises ``ValueError`` if the graph has a cycle — callers must cycle-
    merge first.
    """
    succs, preds = state.adjacency()
    indegree = {node: len(p) for node, p in preds.items()}
    queue = deque(node for node, deg in indegree.items() if deg == 0)
    leap = {node: 0 for node in queue}
    seen = 0
    while queue:
        node = queue.popleft()
        seen += 1
        for succ in succs[node]:
            cand = leap[node] + 1
            if cand > leap.get(succ, -1):
                leap[succ] = cand
            indegree[succ] -= 1
            if indegree[succ] == 0:
                queue.append(succ)
    if seen != len(succs):
        raise ValueError("partition graph contains a cycle; cycle-merge first")
    return leap


def leaps_to_levels(leap: Dict[int, int]) -> List[List[int]]:
    """Invert a leap map into ordered level lists."""
    if not leap:
        return []
    levels: List[List[int]] = [[] for _ in range(max(leap.values()) + 1)]
    for node, k in leap.items():
        levels[k].append(node)
    return levels
