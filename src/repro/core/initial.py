"""Initial partitions: serial blocks, absorption, and boundary splitting.

Implements Section 3.1.1 plus the SDAG preprocessing of Section 2.1:

* **Blocks.**  Executions are grouped into serial blocks.  An entry method
  that ends exactly where an SDAG ``serial`` execution of the same chare
  begins (the runtime schedules chained serials with no gap) is *absorbed*
  into that serial's block.
* **Pieces.**  Each block's dependency events are split into maximal runs
  of application-related vs. runtime-related events (Figure 2).  Each run
  is one initial partition.
* **Edges.**  (1) matched remote invocations, (2) happened-before between
  the split pieces of one block, (3) SDAG-inferred happened-before between
  consecutive blocks of one chare whose serial ordinals are ``n`` and
  ``n+1``.

MPI mode follows Isaacs et al. [13]: every dependency event is its own
initial partition and per-process program order supplies CHAIN edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.partition import EdgeKind, PartitionState
from repro.trace.events import NO_ID, EventKind
from repro.trace.model import Trace


@dataclass
class Block:
    """A serial block: one execution plus any executions absorbed into it."""

    id: int
    chare: int
    pe: int
    executions: List[int]
    events: List[int] = field(default_factory=list)
    start: float = 0.0
    end: float = 0.0
    #: SDAG ordinal of the block's (last) serial entry; -1 when not SDAG.
    sdag_ordinal: int = -1
    #: Entry id of the block's defining (last) execution.
    entry: int = -1
    #: RECV event that triggered the block's first execution (NO_ID if untraced).
    recv_event: int = NO_ID


@dataclass
class InitialStructure:
    """Output of this stage, input to the merge pipeline."""

    blocks: List[Block]
    block_of_event: List[int]
    block_of_exec: List[int]
    state: PartitionState


def scan_serial_blocks(trace: Trace, absorb_tolerance: float = 1e-9) -> List[List[int]]:
    """Group execution ids into serial blocks (SDAG absorption only).

    The grouping pass of :func:`build_blocks`, shared with the columnar
    backend, which fills the per-block event lists vectorized instead of
    through :func:`_make_block`.
    """
    groups: List[List[int]] = []
    entries = trace.entries
    for chare_id, exec_ids in trace.executions_by_chare.items():
        current: List[int] = []
        prev_end = None
        prev_pe = None
        prev_serial = False
        for xid in exec_ids:
            ex = trace.executions[xid]
            # Absorption (Section 2.1): a plain entry method running right
            # before a serial joins that serial's block.  Serial-to-serial
            # adjacency is NOT absorbed — it becomes an SDAG happened-before
            # edge instead, which keeps e.g. two back-to-back ghost-exchange
            # phases separate (the Figure 16 Charm++ LULESH structure).
            absorb = (
                current
                and not prev_serial
                and entries[ex.entry].is_sdag_serial
                and prev_pe == ex.pe
                and abs(ex.start - prev_end) <= absorb_tolerance
            )
            if absorb:
                current.append(xid)
            else:
                if current:
                    groups.append(current)
                current = [xid]
            prev_end = ex.end
            prev_pe = ex.pe
            prev_serial = entries[ex.entry].is_sdag_serial
        if current:
            groups.append(current)
    return groups


def build_blocks(trace: Trace, absorb_tolerance: float = 1e-9) -> Tuple[List[Block], List[int]]:
    """Group executions into serial blocks with SDAG absorption.

    Returns ``(blocks, block_of_exec)``.
    """
    groups = scan_serial_blocks(trace, absorb_tolerance)
    blocks = [_make_block(trace, bid, g) for bid, g in enumerate(groups)]
    block_of_exec = [-1] * len(trace.executions)
    for block in blocks:
        for xid in block.executions:
            block_of_exec[xid] = block.id
    return blocks, block_of_exec


def _make_block(trace: Trace, block_id: int, exec_ids: List[int],
                events: Optional[List[int]] = None) -> Block:
    first = trace.executions[exec_ids[0]]
    last = trace.executions[exec_ids[-1]]
    if events is None:
        events = []
        for xid in exec_ids:
            events.extend(trace.events_of(xid))
        events.sort(key=lambda e: (trace.events[e].time, e))
    ordinal = -1
    for xid in reversed(exec_ids):
        entry = trace.entries[trace.executions[xid].entry]
        if entry.is_sdag_serial:
            ordinal = entry.sdag_ordinal
            break
    return Block(
        id=block_id,
        chare=first.chare,
        pe=first.pe,
        executions=list(exec_ids),
        events=events,
        start=first.start,
        end=last.end,
        sdag_ordinal=ordinal,
        entry=last.entry,
        recv_event=first.recv_event,
    )


def build_initial(trace: Trace, mode: str = "charm",
                  absorb_tolerance: float = 1e-9,
                  relaxed_chain: bool = False) -> InitialStructure:
    """Construct initial partitions and their dependency edges.

    ``mode`` is ``"charm"`` (task model: serial-block pieces, SDAG edges)
    or ``"mpi"`` (message-passing model: one event per partition, strict
    program-order CHAIN edges).

    ``relaxed_chain`` applies only to MPI mode and implements the
    reordering semantics of Section 3.2.1 at the partition level: sends
    stay pinned after every event that precedes them, but a *matched*
    receive is constrained only through its message — freeing it to be
    stepped with its logical wave rather than its arrival position
    (Figure 10).  Unmatched receives keep the program-order edge as a
    fallback.
    """
    if mode not in ("charm", "mpi"):
        raise ValueError(f"unknown mode {mode!r}")
    blocks, block_of_exec = build_blocks(trace, absorb_tolerance)
    block_of_event = [-1] * len(trace.events)
    for block in blocks:
        for ev in block.events:
            block_of_event[ev] = block.id

    init_events: List[List[int]] = []
    init_runtime: List[bool] = []
    init_block: List[int] = []
    event_init = [-1] * len(trace.events)
    edges: List[Tuple[int, int, EdgeKind]] = []

    def new_partition(events: List[int], runtime: bool, block_id: int) -> int:
        pid = len(init_events)
        init_events.append(events)
        init_runtime.append(runtime)
        init_block.append(block_id)
        for ev in events:
            event_init[ev] = pid
        return pid

    runtime_related = trace.runtime_related_flags()

    if mode == "charm":
        for block in blocks:
            prev_pid = -1
            run: List[int] = []
            run_rt = False
            for ev in block.events:
                ev_rt = runtime_related[ev]
                if run and ev_rt != run_rt:
                    pid = new_partition(run, run_rt, block.id)
                    if prev_pid != -1:
                        edges.append((prev_pid, pid, EdgeKind.BLOCK))
                    prev_pid = pid
                    run = []
                run.append(ev)
                run_rt = ev_rt
            if run:
                pid = new_partition(run, run_rt, block.id)
                if prev_pid != -1:
                    edges.append((prev_pid, pid, EdgeKind.BLOCK))
    else:
        for block in blocks:
            prev_pid = -1
            for ev in block.events:
                pid = new_partition([ev], runtime_related[ev], block.id)
                if prev_pid != -1:
                    edges.append((prev_pid, pid, EdgeKind.CHAIN))
                prev_pid = pid

    chare_chain_edges(trace, blocks, event_init, mode, relaxed_chain, edges)
    message_edges(trace, event_init, edges)

    state = PartitionState(trace, init_events, init_runtime, init_block, event_init, edges)
    return InitialStructure(blocks, block_of_event, block_of_exec, state)


def chare_chain_edges(
    trace: Trace,
    blocks: List[Block],
    event_init: List[int],
    mode: str,
    relaxed_chain: bool,
    edges: List[Tuple[int, int, EdgeKind]],
) -> None:
    """Per-chare cross-block edges (SDAG numbering / MPI program order).

    Shared between the python and columnar backends so the two cannot
    drift; appends to ``edges`` in place.
    """
    blocks_by_chare: Dict[int, List[Block]] = {}
    for block in blocks:
        blocks_by_chare.setdefault(block.chare, []).append(block)
    for chare_blocks in blocks_by_chare.values():
        chare_blocks.sort(key=lambda b: (b.start, b.id))
        if mode == "mpi":
            # Message-passing model: physical per-process order is a
            # control-flow order (Section 3.4).  Under relaxed chaining
            # (reordered stepping), only sends are pinned to that order.
            prev_with_events = None
            for cur in chare_blocks:
                if not cur.events:
                    continue
                if prev_with_events is not None:
                    first = cur.events[0]
                    pinned = trace.events[first].kind == EventKind.SEND
                    if not pinned:
                        mid = trace.message_by_recv[first]
                        matched = (
                            mid != NO_ID
                            and trace.messages[mid].send_event != NO_ID
                        )
                        pinned = not matched
                    if not relaxed_chain or pinned:
                        edges.append(
                            (
                                event_init[prev_with_events.events[-1]],
                                event_init[first],
                                EdgeKind.CHAIN,
                            )
                        )
                prev_with_events = cur
            continue
        # SDAG numbering heuristic (Section 2.1): an event of serial n
        # observed (in true time) before an event of serial n+1 implies
        # happened-before.  Every ordinal-(n+1) block after the *latest*
        # ordinal-n block gets an edge from it — e.g. a serial that sends
        # ghosts happened-before each of the `when` receives that follow.
        last_by_ordinal = {}
        for cur in chare_blocks:
            if not cur.events:
                continue
            ordinal = cur.sdag_ordinal
            if ordinal >= 1:
                prev = last_by_ordinal.get(ordinal - 1)
                if prev is not None:
                    edges.append(
                        (event_init[prev.events[-1]], event_init[cur.events[0]],
                         EdgeKind.SDAG)
                    )
            if ordinal >= 0:
                last_by_ordinal[ordinal] = cur


def message_edges(
    trace: Trace,
    event_init: List[int],
    edges: List[Tuple[int, int, EdgeKind]],
) -> None:
    """Remote invocation edges between matched message endpoints."""
    for msg in trace.messages:
        if msg.is_complete():
            a = event_init[msg.send_event]
            b = event_init[msg.recv_event]
            if a != -1 and b != -1:
                edges.append((a, b, EdgeKind.MESSAGE))
