"""Batched union-find kernels for the merge stages.

The paper's phase finding (Algorithms 1 and 2) is a sequence of *merge
rounds*: each round walks a list of candidate partition pairs and unions
the pairs that still qualify.  The historical implementation performed
one :meth:`~repro.core.partition.PartitionState.union` method call per
candidate — two attribute lookups, two ``find`` calls, and a bounds
check of Python bytecode per pair.  This module collapses a whole round
into one :func:`batch_union` call over flat candidate columns, which is
what the ``columnar_batched`` backend uses.

Bit-identity is the design constraint, not an afterthought.  Which
element ends up as a component's *representative* (DSU root) depends on
the exact sequence of unions: union-by-size picks the larger side and
breaks ties toward the first argument, and the roots leak into
downstream dict insertion orders and the phase sort tie-break.  A
fully-vectorized connected-components pass (min-label hooking) would
produce the same *components* but different *representatives*, and the
differential harness would catch the drift immediately.  So the batch
kernel replays the sequential union-by-size decision process exactly —
one tight loop over plain Python lists, with the candidate filtering
(root inequality, class equality) done live inside the loop exactly as
the per-candidate code did it.  The win comes from stripping the
per-candidate interpreter overhead (method dispatch, tuple construction,
repeated ``self`` lookups), not from changing the algorithm.

:func:`connected_components` is the order-free vectorized reference the
property tests compare against: same components, representative-agnostic.

The module imports without NumPy; only :func:`connected_components` and
:func:`roots_numpy` require it.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

try:  # NumPy is a declared dependency, but the pure path must survive without it.
    import numpy as np

    HAVE_NUMPY = True
except Exception:  # pragma: no cover - exercised only in numpy-less installs
    np = None
    HAVE_NUMPY = False


def batch_union(
    parent: List[int],
    size: List[int],
    runtime: List[bool],
    a_ids: Sequence[int],
    b_ids: Sequence[int],
    *,
    same_class_only: bool = False,
) -> int:
    """Union each candidate pair ``(a_ids[i], b_ids[i])`` in order.

    Mutates ``parent``/``size``/``runtime`` in place and returns the
    number of unions performed (pairs whose endpoints were in distinct
    sets and, with ``same_class_only``, whose live root classes agreed).
    The caller owns the set count: ``dsu.count -= batch_union(...)``.

    Semantics are exactly one sequential pass of
    :meth:`repro.core.partition.PartitionState.union` per pair:

    * roots via ``find`` with path compression (path halving — the
      compression style is unobservable, only roots and sizes are);
    * union by size, ties won by the root of ``a_ids[i]``;
    * the winner's ``runtime`` flag becomes the OR of both roots' flags;
    * with ``same_class_only``, a pair whose live roots disagree on the
      runtime flag is skipped (Algorithm 2's class check) — evaluated
      against the *current* roots, so unions earlier in the batch are
      observed by later pairs, exactly like the per-candidate loop.
    """
    tolist = getattr(a_ids, "tolist", None)
    if tolist is not None:
        a_ids = tolist()
    tolist = getattr(b_ids, "tolist", None)
    if tolist is not None:
        b_ids = tolist()
    merged = 0
    for a, b in zip(a_ids, b_ids):
        ra = a
        while parent[ra] != ra:
            parent[ra] = parent[parent[ra]]
            ra = parent[ra]
        rb = b
        while parent[rb] != rb:
            parent[rb] = parent[parent[rb]]
            rb = parent[rb]
        if ra == rb:
            continue
        fa = runtime[ra]
        fb = runtime[rb]
        if same_class_only and fa != fb:
            continue
        if size[ra] < size[rb]:
            ra, rb = rb, ra
        parent[rb] = ra
        size[ra] += size[rb]
        runtime[ra] = fa or fb
        merged += 1
    return merged


class BatchUnionFind:
    """Standalone union-find with the batched kernel and a runtime flag.

    The pipeline states keep their own ``parent``/``size``/``runtime``
    lists and call :func:`batch_union` directly; this class packages the
    same state for tests and for callers outside the pipeline.  Its
    per-element operations mirror :class:`repro.core.partition.DisjointSets`
    so the two are interchangeable in differential tests.
    """

    def __init__(self, n: int, runtime: Optional[Sequence[bool]] = None):
        if runtime is not None and len(runtime) != n:
            raise ValueError("runtime flags must have one entry per element")
        self.parent = list(range(n))
        self.size = [1] * n
        self.runtime = list(runtime) if runtime is not None else [False] * n
        self.count = n

    def find(self, x: int) -> int:
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(self, a: int, b: int, *, same_class_only: bool = False) -> bool:
        """Single-pair form of :func:`batch_union`; True if merged."""
        return self.batch_union([a], [b], same_class_only=same_class_only) == 1

    def batch_union(self, a_ids: Sequence[int], b_ids: Sequence[int], *,
                    same_class_only: bool = False) -> int:
        merged = batch_union(self.parent, self.size, self.runtime,
                             a_ids, b_ids, same_class_only=same_class_only)
        self.count -= merged
        return merged

    def roots_array(self) -> List[int]:
        return [self.find(i) for i in range(len(self.parent))]


def roots_numpy(parent: Sequence[int]):
    """Fully-rooted parent array by pointer jumping (no mutation).

    The array twin of calling ``find`` per element; requires NumPy.
    """
    arr = np.asarray(parent, np.int64)
    while True:
        grand = arr[arr]
        if np.array_equal(grand, arr):
            return arr
        arr = grand


def connected_components(n: int, a_ids: Sequence[int], b_ids: Sequence[int]):
    """Min-label connected components over the given edges (NumPy).

    Returns an ``int64`` array labelling each element with the smallest
    element id of its component.  Independent of edge order and of any
    union sequencing — the representative-agnostic reference the
    property tests compare :func:`batch_union` results against.
    """
    label = np.arange(n, dtype=np.int64)
    a = np.asarray(a_ids, np.int64)
    b = np.asarray(b_ids, np.int64)
    if len(a) != len(b):
        raise ValueError("edge endpoint arrays must have equal length")
    if not len(a):
        return label
    while True:
        before = label
        lo = np.minimum(label[a], label[b])
        label = label.copy()
        np.minimum.at(label, a, lo)
        np.minimum.at(label, b, lo)
        while True:  # full shortcut: every label points at a fixed point
            hop = label[label]
            if np.array_equal(hop, label):
                break
            label = hop
        if np.array_equal(label, before):
            return label
