"""Section 3.2.1: idealized-replay reordering of operations within a phase.

Physical delivery order is scrambled by computation imbalance, network
travel time, and runtime queuing.  Reordering replays each phase forward
under an idealized clock *w* per chare:

* the initial sends of a phase get ``w = 0`` and subsequent sends in the
  same serial block count upward;
* a receive gets ``w = w_send + 1``;
* sends after a receive count up from the receive's value.

Serial blocks of each chare are then sorted by the ``w`` of their initial
event, ties broken by the chare id of the invoking block's chare, then
recursively by the invoking blocks themselves (Figure 7), with physical
time as the final fallback.  Events inside a block keep their order.

The message-passing variant pins sends — ``w_send = 1 + max`` over the
receives that physically preceded it — and lets receives reorder around
them (Figure 9): a stable sort by ``w`` can pull a late receive in front
of a send but can never push a receive behind one.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.trace.events import NO_ID, EventKind
from repro.trace.model import Trace

#: How many invoking blocks back the tie-breaking comparison may look.
MAX_KEY_DEPTH = 6


def physical_order(trace: Trace, phase_events: Sequence[int]) -> Dict[int, List[int]]:
    """Per-chare event order by recorded physical time (no reordering)."""
    out: Dict[int, List[int]] = {}
    events = trace.events
    for ev in sorted(phase_events, key=lambda e: (events[e].time, e)):
        out.setdefault(events[ev].chare, []).append(ev)
    return out


def _assign_w(trace: Trace, phase_events: Sequence[int], in_phase: set,
              block_of_event: Sequence[int]) -> Dict[int, int]:
    """Replay the phase in physical-time order, assigning the w clock.

    Every w dependency (previous event in the block, matching send of a
    receive) lies strictly earlier in physical time, so a single pass in
    time order computes all values.
    """
    events = trace.events
    w: Dict[int, int] = {}
    last_in_block: Dict[int, int] = {}  # block id -> w of latest event
    ordered = sorted(phase_events, key=lambda e: (events[e].time, e))
    for ev in ordered:
        rec = events[ev]
        block = block_of_event[ev]
        if rec.kind == EventKind.RECV:
            mid = trace.message_by_recv[ev]
            send = trace.messages[mid].send_event if mid != NO_ID else NO_ID
            if send != NO_ID and send in in_phase and send in w:
                value = w[send] + 1
            elif block in last_in_block:
                value = last_in_block[block] + 1
            else:
                value = 0
        else:
            if block in last_in_block:
                value = last_in_block[block] + 1
            else:
                value = 0
        w[ev] = value
        last_in_block[block] = value
    return w


def reordered_order_task(
    trace: Trace,
    phase_events: Sequence[int],
    block_of_event: Sequence[int],
    tie_break: str = "chare_id",
    _w: Optional[Dict[int, int]] = None,
    _ordered: Optional[List[int]] = None,
    _trigger: Optional[Dict[int, int]] = None,
) -> Dict[int, List[int]]:
    """Per-chare order for the task (Charm++) model: sort serial blocks.

    ``tie_break`` selects the second comparison for blocks with equal w:
    ``"chare_id"`` (the paper's default) or ``"index"`` — the invoking
    chare's array index, the topology-aware ordering the paper suggests
    for domain-decomposed applications ("an ordering that takes this data
    topology into account will likely be more intuitive").

    ``_w``, ``_ordered`` and ``_trigger`` are bit-identical precomputed
    inputs supplied by the columnar backend (``repro.core.columnar``):
    the w clock, the (time, id)-sorted event list, and the matched
    in-phase send per event.
    """
    if tie_break not in ("chare_id", "index"):
        raise ValueError(f"unknown tie_break {tie_break!r}")
    events = trace.events
    in_phase = set(phase_events)
    if _ordered is None:
        _ordered = sorted(phase_events, key=lambda e: (events[e].time, e))
    w = _w if _w is not None else _assign_w(trace, phase_events, in_phase,
                                            block_of_event)

    # Group the phase's events by serial block, preserving time order.
    block_events: Dict[int, List[int]] = {}
    for ev in _ordered:
        block_events.setdefault(block_of_event[ev], []).append(ev)

    def trigger_send(block_id: int) -> int:
        """The in-phase send that invoked this block's first event, if any."""
        first = block_events[block_id][0]
        if _trigger is not None:
            return _trigger[first]
        if events[first].kind != EventKind.RECV:
            return NO_ID
        mid = trace.message_by_recv[first]
        if mid == NO_ID:
            return NO_ID
        send = trace.messages[mid].send_event
        if send == NO_ID or send not in in_phase:
            return NO_ID
        return send

    def invoker_key(send: int) -> Tuple:
        """Tie-break component for the chare that invoked a block."""
        if send == NO_ID:
            return (-1,)
        chare = trace.chares[events[send].chare]
        if tie_break == "index" and chare.index:
            return tuple(chare.index)
        return (chare.id,)

    key_cache: Dict[Tuple[int, int], Tuple] = {}

    def block_key(block_id: int, depth: int = 0) -> Tuple:
        """Sort key: (w of initial event, invoker chare, ...recursively)."""
        cached = key_cache.get((block_id, depth))
        if cached is not None:
            return cached
        first = block_events[block_id][0]
        send = trigger_send(block_id)
        key: Tuple = (w[first],) + invoker_key(send)
        if depth < MAX_KEY_DEPTH and send != NO_ID:
            src_block = block_of_event[send]
            if src_block != block_id and src_block in block_events:
                key = key + block_key(src_block, depth + 1)
        key_cache[(block_id, depth)] = key
        return key

    out: Dict[int, List[int]] = {}
    blocks_by_chare: Dict[int, List[int]] = {}
    for block_id, evs in block_events.items():
        blocks_by_chare.setdefault(events[evs[0]].chare, []).append(block_id)
    for chare, blist in blocks_by_chare.items():
        # Physical start is the final tie-break so the sort is total.
        blist.sort(
            key=lambda b: (
                block_key(b),
                events[block_events[b][0]].time,
                b,
            )
        )
        ordered: List[int] = []
        for b in blist:
            ordered.extend(block_events[b])
        out[chare] = ordered
    return out


def reordered_order_mp(
    trace: Trace,
    phase_events: Sequence[int],
    block_of_event: Sequence[int],
    _ordered: Optional[List[int]] = None,
) -> Dict[int, List[int]]:
    """Per-process order for the message-passing model: pinned sends.

    ``w_send = 1 + max(w_receive | receive physically precedes send)``, so
    a stable sort by ``w`` keeps every send after the receives that came
    before it, while receives are free to reorder (Figure 9).

    ``_ordered`` is the (time, id)-sorted event list when the caller
    already has it (columnar backend); the send w depends on a running
    max over earlier receives, so the clock itself stays a replay loop.
    """
    events = trace.events
    in_phase = set(phase_events)
    w: Dict[int, int] = {}
    max_recv_w: Dict[int, int] = {}  # chare -> max w over receives so far
    ordered = (_ordered if _ordered is not None
               else sorted(phase_events, key=lambda e: (events[e].time, e)))
    for ev in ordered:
        rec = events[ev]
        if rec.kind == EventKind.RECV:
            mid = trace.message_by_recv[ev]
            send = trace.messages[mid].send_event if mid != NO_ID else NO_ID
            if send != NO_ID and send in in_phase and send in w:
                value = w[send] + 1
            else:
                value = 0
            max_recv_w[rec.chare] = max(max_recv_w.get(rec.chare, -1), value)
        else:
            prior = max_recv_w.get(rec.chare)
            value = 0 if prior is None else prior + 1
        w[ev] = value

    out: Dict[int, List[int]] = {}
    for ev in ordered:
        out.setdefault(events[ev].chare, []).append(ev)
    for chare, evs in out.items():
        evs.sort(key=lambda e: w[e])  # stable: physical order breaks ties
    return out
