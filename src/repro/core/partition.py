"""Partition-graph state shared by all phase-finding stages.

Merging is central to the algorithm, so partitions are represented by a
union-find structure over the *initial* partitions (Section 3.1.1):

* a merge is a union — O(α) amortized;
* the current partition of an event is ``find(initial partition of event)``;
* the structural relationships computed once at the start (message edges,
  within-serial-block adjacency, SDAG-inferred edges) stay expressed at the
  initial-partition level and are re-rooted on demand when a stage needs
  the contracted partition graph.

This keeps each stage near linear in events + edges, matching the paper's
complexity discussion (Section 3.3).
"""

from __future__ import annotations

from enum import IntEnum
from typing import Dict, List, Set, Tuple


class EdgeKind(IntEnum):
    """Provenance of a partition-graph edge."""

    #: Matched remote-invocation endpoints (Section 3.1.1, edge type 1).
    MESSAGE = 0
    #: Happened-before between split pieces of one serial block (type 2).
    BLOCK = 1
    #: Happened-before inferred from SDAG serial numbering (type 3).
    SDAG = 2
    #: Program order between consecutive events of one process (MPI mode).
    CHAIN = 3
    #: Added by inference/ordering stages (Section 3.1.4).
    INFERRED = 4


class DisjointSets:
    """Union-find with path compression and union by size."""

    def __init__(self, n: int):
        self.parent = list(range(n))
        self.size = [1] * n
        self.count = n

    def find(self, x: int) -> int:
        parent = self.parent
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; True if they were distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        self.count -= 1
        return True

    def roots_array(self) -> List[int]:
        """Fully path-compressed root per element, in one pass.

        Stages that re-root many edges (adjacency construction) use this
        flat view instead of per-endpoint ``find`` calls.
        """
        return [self.find(i) for i in range(len(self.parent))]


class PartitionState:
    """Mutable state of the phase-finding stage.

    Attributes
    ----------
    init_events:
        Event ids per initial partition, in physical-time order.
    init_runtime:
        Whether each initial partition holds runtime-related dependencies.
    init_block:
        The serial block (see :mod:`repro.core.initial`) each initial
        partition was cut from.
    event_init:
        Initial partition id per event (-1 for events outside any block).
    edges:
        ``(src_init, dst_init, kind)`` triples.  Current-graph edges are
        obtained by rooting both endpoints through :attr:`dsu`.
    """

    def __init__(
        self,
        trace,
        init_events: List[List[int]],
        init_runtime: List[bool],
        init_block: List[int],
        event_init: List[int],
        edges: List[Tuple[int, int, EdgeKind]],
    ):
        self.trace = trace
        self.init_events = init_events
        self.init_runtime = init_runtime
        self.init_block = init_block
        self.event_init = event_init
        self.edges = edges
        self.dsu = DisjointSets(len(init_events))
        # Runtime flag per DSU root: a partition containing any
        # runtime-related dependency is a runtime partition (Section 3.1).
        self._root_runtime = list(init_runtime)

    # ------------------------------------------------------------------
    def find(self, init_pid: int) -> int:
        """Current partition (DSU root) of an initial partition."""
        return self.dsu.find(init_pid)

    def partition_of_event(self, event_id: int) -> int:
        """Current partition of an event (-1 if the event is unpartitioned)."""
        pid = self.event_init[event_id]
        return -1 if pid == -1 else self.dsu.find(pid)

    def is_runtime(self, pid: int) -> bool:
        """Runtime flag of a *current* partition (pass a DSU root)."""
        return self._root_runtime[self.dsu.find(pid)]

    def union(self, a: int, b: int) -> bool:
        """Merge two partitions, combining their runtime flags."""
        ra, rb = self.dsu.find(a), self.dsu.find(b)
        if ra == rb:
            return False
        flag = self._root_runtime[ra] or self._root_runtime[rb]
        self.dsu.union(ra, rb)
        self._root_runtime[self.dsu.find(ra)] = flag
        return True

    def add_edge(self, a: int, b: int, kind: EdgeKind = EdgeKind.INFERRED) -> None:
        """Add a happened-before edge between two (current) partitions.

        Endpoints are stored at the initial level (any member id works:
        future merges re-root it automatically).
        """
        self.edges.append((a, b, kind))

    # ------------------------------------------------------------------
    # Derived views of the current contracted graph
    # ------------------------------------------------------------------
    def roots(self) -> List[int]:
        """All current partition ids (DSU roots), ascending."""
        return sorted(set(self.dsu.roots_array()))

    def members(self) -> Dict[int, List[int]]:
        """Map current partition -> its initial partitions."""
        out: Dict[int, List[int]] = {}
        for i, root in enumerate(self.dsu.roots_array()):
            out.setdefault(root, []).append(i)
        return out

    def partition_events(self) -> Dict[int, List[int]]:
        """Map current partition -> its event ids (physical-time order)."""
        out: Dict[int, List[int]] = {}
        times = self.trace.events
        for root, inits in self.members().items():
            events: List[int] = []
            for i in inits:
                events.extend(self.init_events[i])
            events.sort(key=lambda e: (times[e].time, e))
            out[root] = events
        return out

    def partition_chares(self) -> Dict[int, Set[int]]:
        """Map current partition -> the set of chares with events in it.

        Unlike :meth:`partition_events`, no time-sorting is needed, so this
        walks the raw member lists directly.
        """
        out: Dict[int, Set[int]] = {}
        events = self.trace.events
        roots = self.dsu.roots_array()
        for i, evs in enumerate(self.init_events):
            bucket = out.setdefault(roots[i], set())
            for e in evs:
                bucket.add(events[e].chare)
        return out

    def adjacency(self) -> Tuple[Dict[int, Set[int]], Dict[int, Set[int]]]:
        """(successors, predecessors) of the current contracted graph.

        Self-loops (edges inside one partition) are dropped; parallel edges
        are deduplicated.
        """
        roots = self.dsu.roots_array()
        # Dedupe via the dict itself (first occurrence wins) rather than
        # set(roots): keeps the adjacency key order deterministic.
        succs: Dict[int, Set[int]] = {r: set() for r in roots}
        preds: Dict[int, Set[int]] = {r: set() for r in succs}
        for a, b, _kind in self.edges:
            ra, rb = roots[a], roots[b]
            if ra != rb:
                succs[ra].add(rb)
                preds[rb].add(ra)
        return succs, preds

    def edges_by_kind(self, kind: EdgeKind) -> List[Tuple[int, int]]:
        """Current-graph edges of one provenance kind (self-loops dropped)."""
        find = self.dsu.find
        out = []
        for a, b, k in self.edges:
            if k == kind:
                ra, rb = find(a), find(b)
                if ra != rb:
                    out.append((ra, rb))
        return out

    def num_partitions(self) -> int:
        """Number of current partitions."""
        return self.dsu.count
