"""Merge stages: dependency merge, cycle merge, serial-block repair.

These are Algorithms 1 and 2 of the paper plus the strongly-connected-
component *cycle merge* both rely on: a cycle in the partition graph means
no order over those partitions exists, so they must belong to one phase.
Cycle merges are the only place application and runtime partitions may
merge with each other (Section 3.1).

Each stage supports three kernels, selected by duck-typing the state
(so the stage bodies stay backend-agnostic) and by two knobs the
pipeline's fallback ladder drives explicitly:

* *batched* — the state exposes ``batch_union_pairs`` (the
  ``columnar_batched`` backend): a whole merge round becomes one
  :func:`repro.core.unionfind.batch_union` pass over candidate columns;
* *columnar* — the state exposes vectorized candidate prefilters
  (``message_merge_candidates`` et al.) but unions run per candidate;
* *python reference* — plain loops over ``state.edges``.

``use_fast_path=False`` forces the reference loops regardless of the
state's capabilities; ``use_batched=False`` allows the columnar
prefilters but not the batched union kernel.  All three produce
bit-identical results — the batched kernel replays the sequential
union-by-size decisions exactly (see :mod:`repro.core.unionfind`).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.core.initial import InitialStructure
from repro.core.partition import EdgeKind, PartitionState


def _batch_kernel(state: PartitionState, use_fast_path: bool,
                  use_batched: bool):
    """The state's batched-union entry point, or None if not in play."""
    if not (use_fast_path and use_batched):
        return None
    return getattr(state, "batch_union_pairs", None)


def cycle_merge(state: PartitionState, *, use_fast_path: bool = True,
                use_batched: bool = True) -> int:
    """Merge every strongly connected component of the partition graph.

    Returns the number of partitions eliminated.  Implemented with an
    iterative Tarjan so deep graphs (long traces) cannot overflow the
    Python recursion limit.
    """
    succs, _preds = state.adjacency()
    index: Dict[int, int] = {}
    lowlink: Dict[int, int] = {}
    on_stack: Set[int] = set()
    stack: List[int] = []
    counter = [0]
    components: List[List[int]] = []

    for start in succs:
        if start in index:
            continue
        # Iterative Tarjan: work entries are (node, iterator over succs).
        work = [(start, iter(succs[start]))]
        index[start] = lowlink[start] = counter[0]
        counter[0] += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(succs[succ])))
                    advanced = True
                    break
                elif succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                comp = []
                while True:
                    top = stack.pop()
                    on_stack.discard(top)
                    comp.append(top)
                    if top == node:
                        break
                if len(comp) > 1:
                    components.append(comp)

    batch = _batch_kernel(state, use_fast_path, use_batched)
    if batch is not None:
        if not components:
            return 0
        heads: List[int] = []
        others: List[int] = []
        for comp in components:
            head = comp[0]
            for other in comp[1:]:
                heads.append(head)
                others.append(other)
        return batch(heads, others)
    eliminated = 0
    for comp in components:
        head = comp[0]
        for other in comp[1:]:
            if state.union(head, other):
                eliminated += 1
    return eliminated


def dependency_merge(state: PartitionState, *, use_fast_path: bool = True,
                     use_batched: bool = True) -> int:
    """Algorithm 1: merge partitions holding matched message endpoints.

    Only same-class (application/application or runtime/runtime) endpoints
    merge here; cross-class invocations — e.g. a ``contribute`` call into a
    reduction manager — remain partition-graph edges.  A cycle merge
    restores the DAG afterwards.
    """
    merged = 0
    batch = _batch_kernel(state, use_fast_path, use_batched)
    arrays = (getattr(state, "message_merge_arrays", None)
              if batch is not None else None)
    candidates = (getattr(state, "message_merge_candidates", None)
                  if use_fast_path else None)
    if arrays is not None:
        # Batched kernel: the same prefiltered candidate stream, unioned
        # in one batch pass instead of per-candidate method calls.
        merged += batch(*arrays())
    elif candidates is not None:
        # Columnar fast path: the same edges in the same order, with the
        # root/class filter evaluated vectorized (classes are constant
        # during this stage — only same-class unions happen here).
        for a, b in candidates():
            if state.union(a, b):
                merged += 1
    else:
        find = state.dsu.find
        for a, b, kind in list(state.edges):
            if kind != EdgeKind.MESSAGE:
                continue
            ra, rb = find(a), find(b)
            if ra == rb:
                continue
            if state.is_runtime(ra) == state.is_runtime(rb):
                if state.union(ra, rb):
                    merged += 1
    merged += cycle_merge(state, use_fast_path=use_fast_path,
                          use_batched=use_batched)
    return merged


def repair_merge(initial: InitialStructure, *, use_fast_path: bool = True,
                 use_batched: bool = True) -> int:
    """Algorithm 2: restore merges lost to application/runtime splitting.

    Two complementary rules, followed by a cycle merge:

    1. *Within-block repair* — adjacent pieces of one serial block that now
       have the same class (only possible after earlier cycle merges
       reclassified one of them) but sit in different partitions are
       rejoined.  Only adjacent pieces are considered: rejoining the outer
       pieces of an app|runtime|app sandwich would force a cycle through
       the middle piece and wrongly collapse the runtime phase into it.
    2. *Cross-chare repair* (Figure 4) — for each partition, directly
       succeeding partitions reached through split-block or SDAG edges
       that come from serial blocks of the same entry method (and share a
       class) are merged with each other; this also implements the
       neighbouring-serial heuristic for control flow passing from one
       multi-chare group to the next.
    """
    state = initial.state
    find = state.dsu.find
    merged = 0
    batch = _batch_kernel(state, use_fast_path, use_batched)

    # Rule 1: adjacent pieces of each block (the BLOCK edges record the
    # within-serial-block happened-before relationships).
    rule1_arrays = (getattr(state, "block_repair_arrays", None)
                    if batch is not None else None)
    rule1 = (getattr(state, "block_repair_candidates", None)
             if use_fast_path else None)
    if rule1_arrays is not None:
        merged += batch(*rule1_arrays())
    elif rule1 is not None:
        for a, b in rule1():
            if state.union(a, b):
                merged += 1
    else:
        for a, b, kind in state.edges:
            if kind != EdgeKind.BLOCK:
                continue
            if state.init_block[a] != state.init_block[b]:
                continue
            ra, rb = find(a), find(b)
            if ra != rb and state.is_runtime(ra) == state.is_runtime(rb):
                if state.union(ra, rb):
                    merged += 1

    # Rule 2: group each partition's structural successors by the entry
    # method of the serial block the successor piece came from.
    succ_groups: Dict[Tuple[int, int, bool], List[int]] = {}
    blocks = initial.blocks
    columns = (getattr(state, "structural_succ_columns", None)
               if use_fast_path else None)
    if columns is not None:
        # Same keys in the same scan order; the root snapshot is taken
        # after rule 1 and no unions happen during the scan.
        for ra, entry, cls, rb in zip(*columns(blocks)):
            succ_groups.setdefault((ra, entry, cls), []).append(rb)
    else:
        for a, b, kind in state.edges:
            if kind not in (EdgeKind.BLOCK, EdgeKind.SDAG):
                continue
            ra, rb = find(a), find(b)
            if ra == rb:
                continue
            entry = blocks[state.init_block[b]].entry
            key = (ra, entry, state.is_runtime(rb))
            succ_groups.setdefault(key, []).append(rb)
    if batch is not None:
        # Batched rule 2: one (head, other) pair per group member, then
        # a single same-class-gated batch pass.  The kernel re-roots and
        # re-checks classes live, so unions from earlier groups are
        # observed by later ones exactly as in the per-candidate loop.
        heads: List[int] = []
        others: List[int] = []
        for group in succ_groups.values():
            if len(group) < 2:
                continue
            head = group[0]
            for other in group[1:]:
                heads.append(head)
                others.append(other)
        merged += batch(heads, others, same_class_only=True)
    else:
        for group in succ_groups.values():
            if len(group) < 2:
                continue
            head = group[0]
            for other in group[1:]:
                ra, rb = find(head), find(other)
                if ra != rb and state.is_runtime(ra) == state.is_runtime(rb):
                    if state.union(ra, rb):
                        merged += 1

    merged += cycle_merge(state, use_fast_path=use_fast_path,
                          use_batched=use_batched)
    return merged
