"""Section 3.1.4: orderability enforcement and missing-dependency inference.

Charm++ traces often lack the control dependencies needed to order the
partition DAG (control decisions made inside the runtime are not traced).
This module implements the paper's compensation heuristics:

* :func:`infer_source_dependencies` (Algorithm 3) — physical-time order of
  partition-starting send events per chare becomes happened-before edges.
* :func:`leap_merge` (Algorithm 4) — same-class partitions overlapping in
  chares at the same leap are assumed to be one phase and merged.
* :func:`order_overlapping` — remaining app/runtime (or, with inference
  disabled, any) same-leap overlaps are *ordered* by the physical time of
  their initial sources, enforcing DAG property (1).
* :func:`enforce_chare_paths` (Algorithm 5) — adds edges so every
  partition's successors span its chares, enforcing DAG property (2)
  (Figure 6).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.core.leaps import compute_leaps, leaps_to_levels
from repro.core.merges import cycle_merge
from repro.core.partition import EdgeKind, PartitionState
from repro.trace.events import EventKind

#: Safety bound on fix-point rounds; real traces converge in a handful.
MAX_ROUNDS = 64


def partition_initial_events(state: PartitionState) -> Dict[int, Dict[int, int]]:
    """First (earliest) event of each partition on each of its chares."""
    fast = getattr(state, "initial_events_by_chare", None)
    if fast is not None:
        return fast()
    out: Dict[int, Dict[int, int]] = {}
    events = state.trace.events
    for root, evs in state.partition_events().items():
        by_chare: Dict[int, int] = {}
        for ev in evs:  # evs are already time-ordered
            chare = events[ev].chare
            if chare not in by_chare:
                by_chare[chare] = ev
        out[root] = by_chare
    return out


def infer_source_dependencies(state: PartitionState) -> int:
    """Algorithm 3: order partitions by their initial source events.

    For each chare, the partition-starting SEND events are sorted by
    physical time; consecutive events in distinct partitions yield
    happened-before edges.  Cycles created by conflicting inferences are
    merged away.
    """
    events = state.trace.events
    per_chare: Dict[int, List[Tuple[float, int, int]]] = {}
    for root, by_chare in partition_initial_events(state).items():
        for chare, ev in by_chare.items():
            if events[ev].kind == EventKind.SEND:
                per_chare.setdefault(chare, []).append((events[ev].time, ev, root))

    added = 0
    find = state.dsu.find
    for entries in per_chare.values():
        entries.sort()
        for (_, ev_a, root_a), (_, ev_b, root_b) in zip(entries, entries[1:]):
            if find(root_a) != find(root_b):
                state.add_edge(ev_to_init(state, ev_a), ev_to_init(state, ev_b),
                               EdgeKind.INFERRED)
                added += 1
    merged = cycle_merge(state)
    return added + merged


def ev_to_init(state: PartitionState, event_id: int) -> int:
    """Initial partition id of an event (for anchoring added edges)."""
    return state.event_init[event_id]


def leap_merge(state: PartitionState) -> int:
    """Algorithm 4: merge same-class partitions overlapping within a leap.

    Iterates to a fixed point because merging shifts downstream leaps.
    """
    merged_total = 0
    for _round in range(MAX_ROUNDS):
        leaps = compute_leaps(state)
        chares = state.partition_chares()
        find = state.dsu.find
        merged = 0
        for level in leaps_to_levels(leaps):
            rep: Dict[Tuple[int, bool], int] = {}
            for p in level:
                root = find(p)
                cls = state.is_runtime(root)
                for c in chares[p]:
                    key = (c, cls)
                    other = rep.get(key)
                    if other is None:
                        rep[key] = root
                    else:
                        other_root = find(other)
                        root = find(root)
                        if other_root != root:
                            state.union(other_root, root)
                            merged += 1
                            root = find(root)
                        rep[key] = root
        if merged == 0:
            return merged_total
        merged_total += merged + cycle_merge(state)
    raise RuntimeError("leap_merge failed to converge")


def _compare_partitions(
    state: PartitionState,
    init: Dict[int, Dict[int, int]],
    p: int,
    q: int,
) -> Tuple[int, int]:
    """Order two overlapping partitions by initial-source physical time.

    Preference order for the comparison basis (Section 3.1.4): shared
    chares' initial events, then shared processors' earliest events, then
    the partitions' global earliest events.  Returns ``(earlier, later)``.
    """
    events = state.trace.events
    p_init, q_init = init[p], init[q]
    shared = set(p_init) & set(q_init)
    if shared:
        tp = min(events[p_init[c]].time for c in shared)
        tq = min(events[q_init[c]].time for c in shared)
    else:
        p_by_pe: Dict[int, float] = {}
        q_by_pe: Dict[int, float] = {}
        for ev in p_init.values():
            pe = events[ev].pe
            p_by_pe[pe] = min(p_by_pe.get(pe, float("inf")), events[ev].time)
        for ev in q_init.values():
            pe = events[ev].pe
            q_by_pe[pe] = min(q_by_pe.get(pe, float("inf")), events[ev].time)
        shared_pes = set(p_by_pe) & set(q_by_pe)
        if shared_pes:
            tp = min(p_by_pe[pe] for pe in shared_pes)
            tq = min(q_by_pe[pe] for pe in shared_pes)
        else:
            tp = min(events[ev].time for ev in p_init.values())
            tq = min(events[ev].time for ev in q_init.values())
    if (tp, p) <= (tq, q):
        return p, q
    return q, p


def order_overlapping(state: PartitionState, cross_class_only: bool = True) -> int:
    """Enforce DAG property (1) by ordering same-leap chare overlaps.

    With ``cross_class_only=True`` (the normal pipeline, following
    Algorithm 4's merges) only application/runtime overlaps remain and are
    ordered.  With ``False`` (the inference-disabled ablation of
    Figure 17) *all* overlaps are forced into sequence by physical time.
    Ordering edges can conflict with existing structure; cycle merges
    resolve such conflicts by unification, per the paper.
    """
    added_total = 0
    for _round in range(MAX_ROUNDS):
        leaps = compute_leaps(state)
        chares = state.partition_chares()
        init = partition_initial_events(state)
        added = 0
        handled: Set[Tuple[int, int]] = set()
        for level in leaps_to_levels(leaps):
            by_chare: Dict[int, List[int]] = {}
            for p in level:
                for c in chares[p]:
                    by_chare.setdefault(c, []).append(p)
            for plist in by_chare.values():
                if len(plist) < 2:
                    continue
                for i in range(len(plist)):
                    for j in range(i + 1, len(plist)):
                        p, q = plist[i], plist[j]
                        if cross_class_only and state.is_runtime(p) == state.is_runtime(q):
                            # Same-class overlap: Algorithm 4 territory; the
                            # pipeline merges these, so treat as one phase.
                            key = (min(p, q), max(p, q))
                            if key not in handled:
                                handled.add(key)
                                state.union(p, q)
                                added += 1
                            continue
                        key = (min(p, q), max(p, q))
                        if key in handled:
                            continue
                        handled.add(key)
                        earlier, later = _compare_partitions(state, init, p, q)
                        # DSU roots are themselves initial-partition ids,
                        # so they anchor edges directly.
                        state.add_edge(earlier, later, EdgeKind.INFERRED)
                        added += 1
        if added == 0:
            return added_total
        added_total += added
        cycle_merge(state)
    raise RuntimeError("order_overlapping failed to converge")


def enforce_chare_paths(state: PartitionState) -> int:
    """Algorithm 5: make each partition's successors span its chares.

    Works backwards through the leaps, tracking for each chare the nearest
    later leap where it appears; a partition must have a direct edge to
    the partition holding each of its chares *at that nearest leap*
    (Figure 6).  A successor at a further leap does not count: only the
    nearest-leap link chains every chare's partitions into the single path
    through the DAG that makes per-chare step uniqueness hold — accepting
    a further successor would let the skipped partition's steps overlap
    the current one's.  Added edges always point from a lower leap to a
    strictly higher one, so no cycles can arise.
    """
    leaps = compute_leaps(state)
    levels = leaps_to_levels(leaps)
    chares = state.partition_chares()
    succs, _preds = state.adjacency()
    added = 0
    last_map: Dict[int, int] = {}  # chare -> nearest later leap containing it
    for k in range(len(levels) - 1, -1, -1):
        for p in levels[k]:
            # Chares that reappear, grouped by the leap they reappear at.
            needed: Dict[int, Set[int]] = {}
            for c in chares[p]:
                nxt = last_map.get(c)
                if nxt is not None:
                    needed.setdefault(nxt, set()).add(c)
            if not needed:
                continue
            for child in succs[p]:
                want = needed.get(leaps[child])
                if want:
                    want -= chares[child]
            for leap_idx in sorted(needed):
                missing = needed[leap_idx]
                if not missing:
                    continue
                for q in levels[leap_idx]:
                    overlap = missing & chares[q]
                    if overlap:
                        state.add_edge(p, q, EdgeKind.INFERRED)
                        added += 1
                        missing -= overlap
                        if not missing:
                            break
        for p in levels[k]:
            for c in chares[p]:
                last_map[c] = k
    return added
