"""Columnar (NumPy) fast-path kernels for the extraction pipeline.

The paper's scaling studies (Figures 18/19, up to 13.8k chares) stress
per-event loops; this module replaces the hot ones with dense-array
kernels while producing *bit-identical* results to the pure-Python code:

* :class:`EventTable` / :class:`BlockTable` — dense int/float columns
  (kind, chare, time, execution, message partner, block) derived once per
  :class:`~repro.trace.model.Trace` and cached on it.
* :func:`build_initial_columnar` — initial partitions via one global
  ``lexsort`` over ``(block, time, id)`` plus vectorized run splitting,
  instead of tens of thousands of tiny per-block sorts.
* :class:`ColumnarPartitionState` — a :class:`PartitionState` whose
  derived views (``roots_array``, ``adjacency``, ``partition_events``,
  ``partition_chares``, ``members``) are computed with array kernels.
* Stage-5/6 kernels — physical ordering (argsort per chare), the
  reorder *w* clock (forest depth by pointer doubling), local-step
  propagation (segmented running-max fixed point), leap computation and
  global-offset application.

Bit-identity is not incidental: downstream stages iterate dicts and sets
whose *insertion order* influences union order in the DSU and therefore
which partition id represents a merged phase.  Every view here replays
the exact insertion sequence of its pure-Python counterpart
(first-occurrence deduplication in the original scan order), which the
differential harness (``repro.verify.differential``) cross-checks.

The module imports cleanly without NumPy; :func:`resolve_backend` then
maps ``"auto"`` to ``"python"``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

try:  # NumPy is a declared dependency, but the pure path must survive without it.
    import numpy as np

    HAVE_NUMPY = True
except Exception:  # pragma: no cover - exercised only in numpy-less installs
    np = None
    HAVE_NUMPY = False

from repro.core.initial import (
    Block,
    InitialStructure,
    chare_chain_edges,
)
from repro.core.partition import EdgeKind, PartitionState
from repro.core.reorder import MAX_KEY_DEPTH
from repro.trace.events import EventKind
from repro.trace.model import Trace

#: Fixed-point rounds before :func:`local_steps_columnar` hands the phase
#: back to the python Kahn implementation (deep message chains / cycles).
MAX_STEP_ROUNDS = 80


#: Backends built on the NumPy kernels in this module; ``"auto"`` picks
#: the batched one (the fastest member) when NumPy is importable.
COLUMNAR_BACKENDS = ("columnar", "columnar_batched")


def resolve_backend(name: str) -> str:
    """Map a ``PipelineOptions.backend`` value to a concrete backend."""
    if name == "auto":
        return "columnar_batched" if HAVE_NUMPY else "python"
    if name in COLUMNAR_BACKENDS:
        if not HAVE_NUMPY:
            raise RuntimeError(f"backend={name!r} requires numpy")
        return name
    if name == "python":
        return "python"
    raise ValueError(f"unknown backend {name!r}")


class EventTable:
    """Dense columns of the per-event record fields, cached per trace."""

    __slots__ = ("n", "kind", "chare", "pe", "time", "execution",
                 "partner_send", "msg_send", "msg_recv")

    def __init__(self, trace: Trace):
        events = trace.events
        n = len(events)
        self.n = n
        self.kind = np.fromiter((int(e.kind) for e in events), np.int8, n)
        self.chare = np.fromiter((e.chare for e in events), np.int64, n)
        self.pe = np.fromiter((e.pe for e in events), np.int64, n)
        self.time = np.fromiter((e.time for e in events), np.float64, n)
        self.execution = np.fromiter((e.execution for e in events), np.int64, n)
        msgs = trace.messages
        m = len(msgs)
        self.msg_send = np.fromiter((g.send_event for g in msgs), np.int64, m)
        self.msg_recv = np.fromiter((g.recv_event for g in msgs), np.int64, m)
        # partner_send[recv] composes message_by_recv with Message.send_event:
        # like the index, a later message overwrites an earlier one, and a
        # matched recv whose message lost its send endpoint stays -1.
        partner = np.full(n, -1, np.int64)
        has_recv = self.msg_recv >= 0
        partner[self.msg_recv[has_recv]] = self.msg_send[has_recv]
        self.partner_send = partner

    @classmethod
    def from_columns(cls, *, kind, chare, pe, time, execution,
                     msg_send, msg_recv) -> "EventTable":
        """Build straight from ingestion columns (no record objects).

        The chunked reader's :class:`~repro.trace.columns.ColumnarTrace`
        seeds the per-trace table cache through this, skipping the
        ``np.fromiter``-over-objects scans of ``__init__`` entirely.
        ``partner_send`` is derived with the same overwrite semantics.
        """
        t = cls.__new__(cls)
        t.n = n = len(kind)
        t.kind = np.asarray(kind, np.int8)
        t.chare = np.asarray(chare, np.int64)
        t.pe = np.asarray(pe, np.int64)
        t.time = np.asarray(time, np.float64)
        t.execution = np.asarray(execution, np.int64)
        t.msg_send = np.asarray(msg_send, np.int64)
        t.msg_recv = np.asarray(msg_recv, np.int64)
        partner = np.full(n, -1, np.int64)
        has_recv = t.msg_recv >= 0
        partner[t.msg_recv[has_recv]] = t.msg_send[has_recv]
        t.partner_send = partner
        return t

    @classmethod
    def of(cls, trace: Trace) -> "EventTable":
        table = getattr(trace, "_columnar_table", None)
        if table is None:
            table = cls(trace)
            trace._columnar_table = table
        return table


class ExecTable:
    """Dense columns of the per-execution record fields, cached per trace."""

    __slots__ = ("n", "start", "end", "pe", "entry", "chare", "recv_event",
                 "entry_serial", "entry_ordinal")

    def __init__(self, trace: Trace):
        ex = trace.executions
        m = len(ex)
        self.n = m
        self.start = np.fromiter((e.start for e in ex), np.float64, m)
        self.end = np.fromiter((e.end for e in ex), np.float64, m)
        self.pe = np.fromiter((e.pe for e in ex), np.int64, m)
        self.entry = np.fromiter((e.entry for e in ex), np.int64, m)
        self.chare = np.fromiter((e.chare for e in ex), np.int64, m)
        self.recv_event = np.fromiter((e.recv_event for e in ex), np.int64, m)
        ents = trace.entries
        k = len(ents)
        self.entry_serial = np.fromiter(
            (e.is_sdag_serial for e in ents), np.bool_, k
        )
        self.entry_ordinal = np.fromiter(
            (e.sdag_ordinal for e in ents), np.int64, k
        )

    @classmethod
    def from_columns(cls, *, start, end, pe, entry, chare, recv_event,
                     entries) -> "ExecTable":
        """Build straight from ingestion columns plus the entry registry."""
        t = cls.__new__(cls)
        t.n = len(start)
        t.start = np.asarray(start, np.float64)
        t.end = np.asarray(end, np.float64)
        t.pe = np.asarray(pe, np.int64)
        t.entry = np.asarray(entry, np.int64)
        t.chare = np.asarray(chare, np.int64)
        t.recv_event = np.asarray(recv_event, np.int64)
        k = len(entries)
        t.entry_serial = np.fromiter(
            (e.is_sdag_serial for e in entries), np.bool_, k
        )
        t.entry_ordinal = np.fromiter(
            (e.sdag_ordinal for e in entries), np.int64, k
        )
        return t

    @classmethod
    def of(cls, trace: Trace) -> "ExecTable":
        table = getattr(trace, "_columnar_execs", None)
        if table is None:
            table = cls(trace)
            trace._columnar_execs = table
        return table


class BlockTable:
    """Dense per-event serial-block column for the stage-5 kernels."""

    __slots__ = ("block_of_event", "n_blocks")

    def __init__(self, block_of_event, n_blocks: int):
        self.block_of_event = block_of_event
        self.n_blocks = n_blocks


class LazyIntList:
    """Immutable ``List[int]`` facade over one int64 array.

    Million-event traces keep several per-event id maps alive for the
    lifetime of the result object (``event_init``, ``block_of_event``,
    ...); as python lists those cost ~30 bytes per element.  This view
    keeps the 8-byte column and materializes python ints only at the
    accessed positions.  Compares elementwise against real lists so
    differential tests see equal structures across backends.
    """

    __slots__ = ("_arr",)

    def __init__(self, arr):
        self._arr = arr

    def __len__(self) -> int:
        return len(self._arr)

    def __getitem__(self, i):
        if isinstance(i, slice):
            return self._arr[i].tolist()
        return int(self._arr[i])

    def __iter__(self):
        return iter(self._arr.tolist())

    def __eq__(self, other):
        if isinstance(other, LazyIntList):
            return np.array_equal(self._arr, other._arr)
        if isinstance(other, (list, tuple)):
            return (len(other) == len(self._arr)
                    and self._arr.tolist() == list(other))
        return NotImplemented

    __hash__ = None  # mutable-sequence semantics, like list

    def __array__(self, dtype=None):
        return self._arr if dtype is None else self._arr.astype(dtype)

    def __repr__(self) -> str:
        return f"LazyIntList({self._arr.tolist()!r})"

    def __getstate__(self):
        return self._arr

    def __setstate__(self, arr):
        self._arr = arr


class LazyIntListOfLists:
    """Immutable ``List[List[int]]`` facade over flat + offset arrays.

    Backs ``init_events`` (event ids per initial partition): one shared
    flat id array plus per-partition ``[start, end)`` bounds, instead of
    hundreds of thousands of small python lists.
    """

    __slots__ = ("_flat", "_starts", "_ends")

    def __init__(self, flat, starts, ends):
        self._flat = flat
        self._starts = starts
        self._ends = ends

    def __len__(self) -> int:
        return len(self._starts)

    def __getitem__(self, i):
        if isinstance(i, slice):
            return [self[j] for j in range(*i.indices(len(self)))]
        s, e = self._starts[i], self._ends[i]
        return self._flat[s:e].tolist()

    def __iter__(self):
        flat = self._flat.tolist()
        for s, e in zip(self._starts.tolist(), self._ends.tolist()):
            yield flat[s:e]

    def __eq__(self, other):
        if isinstance(other, (LazyIntListOfLists, list, tuple)):
            return (len(other) == len(self)
                    and all(a == b for a, b in zip(self, other)))
        return NotImplemented

    __hash__ = None

    def __getstate__(self):
        return self._flat, self._starts, self._ends

    def __setstate__(self, state):
        self._flat, self._starts, self._ends = state


class EdgeList:
    """Append-only ``(src, dst, kind)`` edge log stored as int64 columns.

    List-compatible for the shared stage code (append / extend / len /
    indexing / iteration yield the same tuples, with ``kind`` revived as
    :class:`EdgeKind`), but 24 bytes per edge instead of ~120 for a
    tuple, and the columnar fast paths read the backing arrays without
    the list→array resync the previous implementation needed.
    """

    __slots__ = ("_src", "_dst", "_kind", "n")

    def __init__(self):
        self._src = np.empty(1024, np.int64)
        self._dst = np.empty(1024, np.int64)
        self._kind = np.empty(1024, np.int64)
        self.n = 0

    @classmethod
    def from_triples(cls, triples) -> "EdgeList":
        out = cls()
        out.extend(triples)
        return out

    def _reserve(self, need: int) -> None:
        cap = len(self._src)
        if need <= cap:
            return
        cap = max(cap * 2, need)
        for name in ("_src", "_dst", "_kind"):
            old = getattr(self, name)
            grown = np.empty(cap, np.int64)
            grown[:self.n] = old[:self.n]
            setattr(self, name, grown)

    def append(self, edge) -> None:
        a, b, k = edge
        n = self.n
        self._reserve(n + 1)
        self._src[n] = a
        self._dst[n] = b
        self._kind[n] = int(k)
        self.n = n + 1

    def extend(self, triples) -> None:
        for edge in triples:
            self.append(edge)

    def extend_columns(self, src, dst, kind: int) -> None:
        """Bulk append of parallel endpoint arrays with one edge kind."""
        k = len(src)
        if not k:
            return
        n = self.n
        self._reserve(n + k)
        self._src[n:n + k] = src
        self._dst[n:n + k] = dst
        self._kind[n:n + k] = int(kind)
        self.n = n + k

    def arrays(self):
        """(src, dst, kind) as trimmed array views — always in sync."""
        n = self.n
        return self._src[:n], self._dst[:n], self._kind[:n]

    def __len__(self) -> int:
        return self.n

    def _tuple(self, i: int):
        return (int(self._src[i]), int(self._dst[i]),
                EdgeKind(int(self._kind[i])))

    def __getitem__(self, i):
        if isinstance(i, slice):
            return [self._tuple(j) for j in range(*i.indices(self.n))]
        if i < 0:
            i += self.n
        if not 0 <= i < self.n:
            raise IndexError(i)
        return self._tuple(i)

    def __iter__(self):
        n = self.n
        kinds = [EdgeKind(k) for k in self._kind[:n].tolist()]
        return iter(list(zip(self._src[:n].tolist(),
                             self._dst[:n].tolist(), kinds)))

    def __eq__(self, other):
        if isinstance(other, (EdgeList, list, tuple)):
            return (len(other) == self.n
                    and all(a == b for a, b in zip(self, other)))
        return NotImplemented

    __hash__ = None

    def __getstate__(self):
        src, dst, kind = self.arrays()
        return src.copy(), dst.copy(), kind.copy()

    def __setstate__(self, state):
        self._src, self._dst, self._kind = [np.ascontiguousarray(a)
                                            for a in state]
        self.n = len(self._src)


class LazyBlockList:
    """Immutable ``List[Block]`` facade over per-block columns.

    Serial-block metadata lives in seven scalar arrays plus shared flat
    event/execution id arrays with per-block bounds; :class:`Block`
    objects (with real list fields, equal to the python backend's) are
    materialized only for the indices actually touched.  For a
    million-event trace this replaces ~450 MB of Block objects and
    per-block lists with ~50 MB of columns.
    """

    __slots__ = ("chare", "pe", "start", "end", "entry", "recv_event",
                 "sdag_ordinal", "_ev_flat", "_ev_lo", "_ev_hi",
                 "_x_flat", "_x_lo", "_x_hi")

    def __init__(self, *, chare, pe, start, end, entry, recv_event,
                 sdag_ordinal, ev_flat, ev_lo, ev_hi, x_flat, x_lo, x_hi):
        self.chare = chare
        self.pe = pe
        self.start = start
        self.end = end
        self.entry = entry
        self.recv_event = recv_event
        self.sdag_ordinal = sdag_ordinal
        self._ev_flat = ev_flat
        self._ev_lo = ev_lo
        self._ev_hi = ev_hi
        self._x_flat = x_flat
        self._x_lo = x_lo
        self._x_hi = x_hi

    def __len__(self) -> int:
        return len(self.chare)

    def _make(self, i: int) -> Block:
        b = Block.__new__(Block)
        b.__dict__ = {
            "id": i,
            "chare": int(self.chare[i]),
            "pe": int(self.pe[i]),
            "executions": self._x_flat[self._x_lo[i]:self._x_hi[i]].tolist(),
            "events": self._ev_flat[self._ev_lo[i]:self._ev_hi[i]].tolist(),
            "start": float(self.start[i]),
            "end": float(self.end[i]),
            "sdag_ordinal": int(self.sdag_ordinal[i]),
            "entry": int(self.entry[i]),
            "recv_event": int(self.recv_event[i]),
        }
        return b

    def __getitem__(self, i):
        n = len(self.chare)
        if isinstance(i, slice):
            return [self._make(j) for j in range(*i.indices(n))]
        if i < 0:
            i += n
        if not 0 <= i < n:
            raise IndexError(i)
        return self._make(i)

    def __iter__(self):
        for i in range(len(self.chare)):
            yield self._make(i)

    def __eq__(self, other):
        if isinstance(other, (LazyBlockList, list, tuple)):
            return (len(other) == len(self)
                    and all(a == b for a, b in zip(self, other)))
        return NotImplemented

    __hash__ = None

    def __getstate__(self):
        return tuple(getattr(self, name) for name in self.__slots__)

    def __setstate__(self, state):
        for name, value in zip(self.__slots__, state):
            setattr(self, name, value)


def runtime_related_array(trace: Trace, table: EventTable):
    """Vectorized :meth:`Trace.runtime_related_flags`."""
    runtime_chare = np.fromiter(
        (c.is_runtime for c in trace.chares), np.bool_, len(trace.chares)
    )
    flags = runtime_chare[table.chare] if table.n else np.zeros(0, np.bool_)
    complete = (table.msg_send >= 0) & (table.msg_recv >= 0)
    send = table.msg_send[complete]
    recv = table.msg_recv[complete]
    flags[recv[runtime_chare[table.chare[send]]]] = True
    flags[send[runtime_chare[table.chare[recv]]]] = True
    return flags


class ColumnarPartitionState(PartitionState):
    """Partition state with array-kernel derived views.

    Only *views* change; the union-find, edge list, and every mutation
    path are inherited, so the merge/inference stages run the same code
    as the python backend and observe identical dict/set orders.
    """

    def __init__(self, trace, init_events, init_runtime, init_block, event_init,
                 edges, table: Optional[EventTable] = None, event_init_arr=None):
        super().__init__(trace, init_events, init_runtime, init_block,
                         event_init, edges)
        if not isinstance(self.edges, EdgeList):
            self.edges = EdgeList.from_triples(self.edges)
        self.table = table if table is not None else EventTable.of(trace)
        if event_init_arr is None:
            event_init_arr = (
                np.asarray(event_init, np.int64)
                if len(event_init) else np.empty(0, np.int64)
            )
        self.event_init_arr = event_init_arr
        # Partitioned events flattened in (initial partition, time, id)
        # order — exactly the concatenation order of ``init_events``.
        evs = np.flatnonzero(event_init_arr >= 0)
        init_of = event_init_arr[evs]
        order = np.lexsort((evs, self.table.time[evs], init_of))
        self._flat_events = evs[order]
        self._flat_init = init_of[order]
        self._flat_time = self.table.time[self._flat_events]
        self._flat_chare = self.table.chare[self._flat_events]
        self._init_block_arr = (
            np.asarray(init_block, np.int64) if len(init_block)
            else np.empty(0, np.int64)
        )
        self.block_table: Optional[BlockTable] = None
        self._adj_cache = None

    # -- array primitives ----------------------------------------------
    def roots_np(self):
        """Fully-rooted parent array via pointer jumping (no mutation)."""
        parent = np.asarray(self.dsu.parent, np.int64)
        while True:
            grand = parent[parent]
            if np.array_equal(grand, parent):
                return parent
            parent = grand

    def edge_arrays(self):
        """(src, dst, kind) columns of ``self.edges`` (live views)."""
        return self.edges.arrays()

    def _group_perm(self, roots):
        """Unique roots + the permutation putting them in first-occurrence
        (= smallest member initial id) order — the python dict key order."""
        uniq, first = np.unique(roots, return_index=True)
        return uniq, np.argsort(first)

    # -- derived views (bit-identical overrides) ------------------------
    def roots_array(self) -> List[int]:
        return self.roots_np().tolist()

    def roots(self) -> List[int]:
        return np.unique(self.roots_np()).tolist()

    def members(self) -> Dict[int, List[int]]:
        roots = self.roots_np()
        if not len(roots):
            return {}
        order = np.argsort(roots, kind="stable")
        sorted_roots = roots[order]
        starts = np.flatnonzero(np.r_[True, sorted_roots[1:] != sorted_roots[:-1]])
        ends = np.r_[starts[1:], len(order)]
        # Stable sort => the first element of each group is its smallest
        # member id; groups ordered by it reproduce setdefault key order.
        perm = np.argsort(order[starts])
        order_list = order.tolist()
        out: Dict[int, List[int]] = {}
        for gi in perm.tolist():
            s, e = int(starts[gi]), int(ends[gi])
            out[int(sorted_roots[s])] = order_list[s:e]
        return out

    def partition_events(self) -> Dict[int, List[int]]:
        roots = self.roots_np()
        if not len(roots):
            return {}
        uniq, perm = self._group_perm(roots)
        ev_root = roots[self._flat_init]
        order = np.lexsort((self._flat_events, self._flat_time, ev_root))
        r_sorted = ev_root[order]
        e_sorted = self._flat_events[order].tolist()
        starts = np.flatnonzero(np.r_[True, r_sorted[1:] != r_sorted[:-1]])
        ends = np.r_[starts[1:], len(order)]
        # Groups come out ascending by root value — the same order as
        # ``uniq`` — so group i belongs to uniq[present[i]].
        present = np.searchsorted(uniq, r_sorted[starts])
        slices = {}
        for gi, s, e in zip(present.tolist(), starts.tolist(), ends.tolist()):
            slices[gi] = (s, e)
        out: Dict[int, List[int]] = {}
        for gi in perm.tolist():
            se = slices.get(gi)
            out[int(uniq[gi])] = e_sorted[se[0]:se[1]] if se else []
        return out

    def partition_chares(self) -> Dict[int, Set[int]]:
        roots = self.roots_np()
        if not len(roots):
            return {}
        uniq, perm = self._group_perm(roots)
        out: Dict[int, Set[int]] = {int(uniq[gi]): set() for gi in perm.tolist()}
        if len(self._flat_events):
            ev_root = roots[self._flat_init]
            n_chares = max(len(self.trace.chares), 1)
            pair = ev_root * n_chares + self._flat_chare
            _, first = np.unique(pair, return_index=True)
            first.sort()  # chronological first occurrence per (root, chare)
            for r, c in zip(ev_root[first].tolist(),
                            self._flat_chare[first].tolist()):
                out[r].add(c)
        return out

    def initial_events_by_chare(self) -> Dict[int, Dict[int, int]]:
        """Vectorized ``inference.partition_initial_events``."""
        roots = self.roots_np()
        if not len(roots):
            return {}
        uniq, perm = self._group_perm(roots)
        out: Dict[int, Dict[int, int]] = {int(uniq[gi]): {} for gi in perm.tolist()}
        if len(self._flat_events):
            ev_root = roots[self._flat_init]
            order = np.lexsort((self._flat_events, self._flat_time, ev_root))
            n_chares = max(len(self.trace.chares), 1)
            pair = ev_root[order] * n_chares + self._flat_chare[order]
            _, first = np.unique(pair, return_index=True)
            first.sort()  # (root-grouped, time) order => per-root insertion order
            sel = order[first]
            for r, c, e in zip(ev_root[sel].tolist(),
                               self._flat_chare[sel].tolist(),
                               self._flat_events[sel].tolist()):
                out[r][c] = e
        return out

    def adjacency(self) -> Tuple[Dict[int, Set[int]], Dict[int, Set[int]]]:
        # The result is a pure function of (roots, edges).  ``dsu.count``
        # strictly decreases on every union and ``edges`` only grows, so
        # an unchanged (count, edge-count) stamp proves nothing relevant
        # changed since the last call.  All callers treat the returned
        # dicts as read-only (they iterate; cycle_merge unions through
        # the DSU, which bumps the stamp).
        stamp = (self.dsu.count, len(self.edges))
        if self._adj_cache is not None and self._adj_cache[0] == stamp:
            return self._adj_cache[1]
        roots = self.roots_np()
        roots_list = roots.tolist()
        uniq = set(roots_list)
        succs: Dict[int, Set[int]] = {r: set() for r in uniq}
        preds: Dict[int, Set[int]] = {r: set() for r in succs}
        src, dst, _kind = self.edge_arrays()
        ra = roots[src]
        rb = roots[dst]
        keep = ra != rb
        ra = ra[keep]
        rb = rb[keep]
        if len(ra):
            n = max(len(self.init_events), 1)
            pair = ra * n + rb
            _, first = np.unique(pair, return_index=True)
            first.sort()  # first occurrence in edge order = insertion order
            ra = ra[first]
            rb = rb[first]
            # Grouped set construction instead of a per-pair python loop.
            # The stable sort keeps each group's members in edge order, so
            # every set sees the exact insertion sequence the pair loop
            # would produce (int-set iteration order depends on it).
            for keys, vals, out in ((ra, rb, succs), (rb, ra, preds)):
                order = np.argsort(keys, kind="stable")
                ks = keys[order]
                vs = vals[order].tolist()
                starts = np.flatnonzero(np.r_[True, ks[1:] != ks[:-1]])
                bounds = np.r_[starts, len(ks)].tolist()
                key_list = ks[starts].tolist()
                for i, key in enumerate(key_list):
                    out[key].update(vs[bounds[i]:bounds[i + 1]])
        self._adj_cache = (stamp, (succs, preds))
        return succs, preds

    # -- merge-stage fast paths ----------------------------------------
    def _message_merge_pairs(self):
        """(src, dst) arrays of the MESSAGE endpoints Algorithm 1 would
        union, in edge order.  Prefiltering against a root snapshot is
        valid because Algorithm 1 only performs same-class unions, so
        partition classes are constant for the duration of the stage."""
        src, dst, kind = self.edge_arrays()
        sel = kind == int(EdgeKind.MESSAGE)
        empty = np.empty(0, np.int64)
        if not sel.any():
            return empty, empty
        a = src[sel]
        b = dst[sel]
        roots = self.roots_np()
        ra = roots[a]
        rb = roots[b]
        cls = np.asarray(self._root_runtime, np.bool_)
        keep = (ra != rb) & (cls[ra] == cls[rb])
        return a[keep], b[keep]

    def _block_repair_pairs(self):
        """(src, dst) arrays for repair rule 1 — BLOCK edges within one
        serial block whose classes re-agree; same static-class argument
        as :meth:`_message_merge_pairs`."""
        src, dst, kind = self.edge_arrays()
        sel = kind == int(EdgeKind.BLOCK)
        empty = np.empty(0, np.int64)
        if not sel.any():
            return empty, empty
        a = src[sel]
        b = dst[sel]
        same_block = self._init_block_arr[a] == self._init_block_arr[b]
        a = a[same_block]
        b = b[same_block]
        roots = self.roots_np()
        ra = roots[a]
        rb = roots[b]
        cls = np.asarray(self._root_runtime, np.bool_)
        keep = (ra != rb) & (cls[ra] == cls[rb])
        return a[keep], b[keep]

    def message_merge_candidates(self) -> List[Tuple[int, int]]:
        """MESSAGE edges whose endpoints dependency_merge would union."""
        a, b = self._message_merge_pairs()
        return list(zip(a.tolist(), b.tolist()))

    def block_repair_candidates(self) -> List[Tuple[int, int]]:
        """BLOCK edges dependency repair rule 1 would union."""
        a, b = self._block_repair_pairs()
        return list(zip(a.tolist(), b.tolist()))

    def structural_succ_columns(self, blocks: Sequence[Block]):
        """(root(a), entry-of-b's-block, class(root(b)), root(b)) columns
        for the BLOCK/SDAG edges with distinct roots (repair rule 2)."""
        src, dst, kind = self.edge_arrays()
        sel = (kind == int(EdgeKind.BLOCK)) | (kind == int(EdgeKind.SDAG))
        if not sel.any():
            return [], [], [], []
        a = src[sel]
        b = dst[sel]
        roots = self.roots_np()
        ra = roots[a]
        rb = roots[b]
        keep = ra != rb
        ra = ra[keep]
        rb = rb[keep]
        b = b[keep]
        entry_of_block = (
            blocks.entry if isinstance(blocks, LazyBlockList)
            else np.fromiter((blk.entry for blk in blocks), np.int64,
                             len(blocks))
        )
        entry = entry_of_block[self._init_block_arr[b]]
        cls = np.asarray(self._root_runtime, np.bool_)[rb]
        return ra.tolist(), entry.tolist(), cls.tolist(), rb.tolist()


class ColumnarBatchedPartitionState(ColumnarPartitionState):
    """Columnar state whose merge rounds run as batched union passes.

    The presence of :meth:`batch_union_pairs` (and the ``*_arrays``
    candidate forms) is what switches :mod:`repro.core.merges` onto the
    batched kernel — the stage bodies stay backend-agnostic and
    duck-type the state, exactly like the per-candidate columnar fast
    paths before it.  :func:`repro.core.unionfind.batch_union` replays
    the sequential union-by-size decisions bit-identically, so
    everything downstream (representative ids, dict insertion orders,
    phase tie-breaks) is unchanged.
    """

    def batch_union_pairs(self, a_ids, b_ids, *,
                          same_class_only: bool = False) -> int:
        """One merge round: union candidate pairs in order, return count."""
        from repro.core.unionfind import batch_union

        dsu = self.dsu
        merged = batch_union(dsu.parent, dsu.size, self._root_runtime,
                             a_ids, b_ids, same_class_only=same_class_only)
        dsu.count -= merged
        return merged

    def message_merge_arrays(self):
        """Algorithm 1 candidate columns for :meth:`batch_union_pairs`."""
        return self._message_merge_pairs()

    def block_repair_arrays(self):
        """Repair rule 1 candidate columns for :meth:`batch_union_pairs`."""
        return self._block_repair_pairs()


# ----------------------------------------------------------------------
# Stage 1: initial partitions
# ----------------------------------------------------------------------
def _absorb_flags(serial, pe, start, end, first_positions, absorb_tolerance):
    """Pairwise absorption predicate over one contiguous execution span.

    ``first_positions`` marks each chare's first execution in the span;
    those can never absorb, which also voids the (meaningless) pairwise
    predicate computed across a chare boundary.
    """
    total = len(serial)
    absorb = np.zeros(total, np.bool_)
    if total > 1:
        absorb[1:] = (
            (~serial[:-1]) & serial[1:] & (pe[1:] == pe[:-1])
            & (np.abs(start[1:] - end[:-1]) <= absorb_tolerance)
        )
    if total:
        absorb[first_positions] = False
    return absorb


def _shard_absorb_worker(payload):
    """Process-pool entry: absorb flags for one shard's column slices.

    Top-level (picklable by reference) and fed nothing but NumPy column
    slices — workers never deserialize a trace.  A trailing ``window``
    switches the shard onto the incremental fold (streamed traces);
    both kernels produce the same flags bit for bit.
    """
    serial, pe, start, end, first_positions, absorb_tolerance, window = payload
    if window is not None:
        from repro.core.streaming import absorb_flags_windowed

        return absorb_flags_windowed(serial, pe, start, end, first_positions,
                                     absorb_tolerance, window)
    return _absorb_flags(serial, pe, start, end, first_positions,
                         absorb_tolerance)


def _concat_ranges(starts, lens):
    """Concatenated ``[s, s + l)`` index ranges, fully vectorized."""
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, np.int64)
    keep = lens > 0
    s = starts[keep]
    l = lens[keep]
    offsets = np.r_[0, np.cumsum(l)[:-1]]
    return np.repeat(s - offsets, l) + np.arange(total, dtype=np.int64)


def pe_shard_plan(trace: Trace, xt: Optional[ExecTable] = None) -> List[List[int]]:
    """Chare slots grouped by the PE of each chare's first execution.

    A *slot* is a chare's position in ``trace.executions_by_chare``
    iteration order.  Serial-block absorption depends only on adjacent
    executions of one chare, so any grouping of whole chares is a valid
    shard plan; grouping by home PE mirrors how the runtime laid the
    work out and gives the multi-core path shards with balanced event
    counts.  Chares without executions ride along in a ``-1`` shard.
    """
    if xt is None:
        xt = ExecTable.of(trace)
    plan: Dict[int, List[int]] = {}
    for slot, exec_ids in enumerate(trace.executions_by_chare.values()):
        pe = int(xt.pe[exec_ids[0]]) if exec_ids else -1
        plan.setdefault(pe, []).append(slot)
    return [shard for shard in plan.values() if shard]


def _absorb_sharded(serial, pe, start, end, chare_starts, lens, shard_plan,
                    absorb_tolerance, shard_workers, window=None):
    """Stitch per-shard absorb flags into the global absorb array.

    Each shard is a list of whole-chare slots; the predicate never
    crosses a chare boundary (boundary positions are forced False both
    globally and shard-locally), so the stitched result is equal to the
    unsharded scan *by construction*, for every valid plan.  The plan
    must cover every chare exactly once — validated here so a buggy
    plan fails loudly instead of silently mis-partitioning.
    """
    total = len(serial)
    absorb = np.zeros(total, np.bool_)
    seen = np.zeros(len(lens), np.bool_)
    shards = []
    for shard in shard_plan:
        slots = np.asarray(shard, np.int64)
        if not len(slots):
            continue
        if seen[slots].any():
            raise ValueError("shard plan assigns a chare to multiple shards")
        seen[slots] = True
        s = chare_starts[slots]
        l = lens[slots]
        pos = _concat_ranges(s, l)
        if not len(pos):
            continue
        local_first = np.r_[0, np.cumsum(l)[:-1]]
        local_first = local_first[local_first < len(pos)]
        shards.append((pos, (serial[pos], pe[pos], start[pos], end[pos],
                             local_first, absorb_tolerance, window)))
    if not seen.all():
        raise ValueError("shard plan must cover every chare exactly once")
    if shard_workers is not None and shard_workers > 1 and len(shards) > 1:
        # Imported lazily: repro.batch builds on the pipeline, which
        # builds on this module.
        from repro.batch import map_in_processes

        results = map_in_processes(_shard_absorb_worker,
                                   [payload for _, payload in shards],
                                   workers=shard_workers)
    else:
        results = [_shard_absorb_worker(payload) for _, payload in shards]
    for (pos, _payload), sub in zip(shards, results):
        absorb[pos] = sub
    return absorb


def _scan_serial_blocks_columnar(trace: Trace, absorb_tolerance: float,
                                 xt: ExecTable, shard_plan=None,
                                 shard_workers: Optional[int] = None,
                                 window: Optional[int] = None):
    """Vectorized :func:`repro.core.initial.scan_serial_blocks`.

    The absorption decision depends only on the (previous, current)
    execution pair — never on accumulated group state — so the per-chare
    scan reduces to pairwise boundary predicates, and with a
    ``shard_plan`` (lists of whole-chare slots, see
    :func:`pe_shard_plan`) the predicate evaluation shards cleanly —
    optionally across processes via ``shard_workers``.  A ``window``
    (set for chunk-ingested traces) folds the predicate incrementally
    (:func:`repro.core.streaming.absorb_flags_windowed`) — same flags,
    bounded scan state.  Returns ``(block_of_exec_arr, xid_arr,
    group_starts, serial_seq)`` — group ``i`` owns the execution ids
    ``xid_arr[group_starts[i]:group_starts[i+1]]``; the differential
    harness cross-checks the grouping against the python scan.
    """
    by_chare = trace.executions_by_chare
    xids = [xid for lst in by_chare.values() for xid in lst]
    total = len(xids)
    if total == 0:
        empty = np.empty(0, np.int64)
        return np.full(xt.n, -1, np.int64), empty, empty, np.empty(0, np.bool_)
    xid_arr = np.asarray(xids, np.int64)
    lens = np.fromiter((len(lst) for lst in by_chare.values()), np.int64,
                       len(by_chare))
    chare_starts = np.r_[0, np.cumsum(lens)[:-1]]
    serial = xt.entry_serial[xt.entry[xid_arr]]
    pe = xt.pe[xid_arr]
    start = xt.start[xid_arr]
    end = xt.end[xid_arr]
    if shard_plan is None:
        chare_first = chare_starts[chare_starts < total]
        if window is not None:
            from repro.core.streaming import absorb_flags_windowed

            absorb = absorb_flags_windowed(serial, pe, start, end,
                                           chare_first, absorb_tolerance,
                                           window)
        else:
            absorb = _absorb_flags(serial, pe, start, end, chare_first,
                                   absorb_tolerance)
    else:
        absorb = _absorb_sharded(serial, pe, start, end, chare_starts, lens,
                                 shard_plan, absorb_tolerance, shard_workers,
                                 window=window)
    starts = np.flatnonzero(~absorb)
    block_of_exec = np.full(xt.n, -1, np.int64)
    block_of_exec[xid_arr] = np.cumsum(~absorb) - 1
    return block_of_exec, xid_arr, starts, serial


def _make_blocks_columnar(xt: ExecTable, xid_arr, starts, serial_seq,
                          ev_flat, ev_lo, ev_hi):
    """Vectorized :func:`repro.core.initial._make_block` over all groups.

    Returns a :class:`LazyBlockList` — every per-block attribute is a
    dense column; :class:`~repro.core.initial.Block` objects materialize
    only on access.  ``ev_flat``/``ev_lo``/``ev_hi`` carry each block's
    event ids ((time, id)-sorted); execution ids come from ``xid_arr``
    bounded by ``starts``.
    """
    nb = len(starts)
    empty = np.empty(0, np.int64)
    if nb == 0:
        return LazyBlockList(
            chare=empty, pe=empty, start=np.empty(0, np.float64),
            end=np.empty(0, np.float64), entry=empty, recv_event=empty,
            sdag_ordinal=empty, ev_flat=ev_flat, ev_lo=ev_lo, ev_hi=ev_hi,
            x_flat=xid_arr, x_lo=empty, x_hi=empty,
        )
    total = len(xid_arr)
    ends = np.r_[starts[1:], total]
    first_x = xid_arr[starts]
    last_x = xid_arr[ends - 1]
    # SDAG ordinal of the group's last serial execution (-1 when none).
    ser_pos = np.where(serial_seq, np.arange(total, dtype=np.int64), -1)
    last_ser = np.maximum.reduceat(ser_pos, starts)
    ordinal = np.where(
        last_ser >= 0,
        xt.entry_ordinal[xt.entry[xid_arr[np.clip(last_ser, 0, None)]]],
        -1,
    )
    return LazyBlockList(
        chare=xt.chare[first_x], pe=xt.pe[first_x],
        start=xt.start[first_x], end=xt.end[last_x],
        entry=xt.entry[last_x], recv_event=xt.recv_event[first_x],
        sdag_ordinal=ordinal,
        ev_flat=ev_flat, ev_lo=ev_lo, ev_hi=ev_hi,
        x_flat=xid_arr, x_lo=starts, x_hi=ends,
    )


def _chain_edges_columnar(table: EventTable, mode: str, relaxed_chain: bool,
                          edges, event_init_arr, b_chare, b_start, b_ordinal,
                          present_ids, first_ev, last_ev) -> bool:
    """Columnar :func:`repro.core.initial.chare_chain_edges`.

    Valid only when blocks are already grouped by chare in (start, id)
    order — always true for blocks built by this module, but verified;
    returns False to request the shared python fallback otherwise.  The
    per-chare scans are order-preserving, so the edges land in the same
    sequence the python helper appends them.
    """
    if not len(b_chare):
        return True
    if np.any(b_chare[1:] < b_chare[:-1]):
        return False
    same = b_chare[1:] == b_chare[:-1]
    if np.any(b_start[1:][same] < b_start[:-1][same]):
        return False
    # ``present_ids`` (blocks that own events) are ascending, so a single
    # pass over them is the python helper's per-chare traversal.
    chare_p = b_chare[present_ids].tolist()
    ei_first = event_init_arr[first_ev].tolist()
    ei_last = event_init_arr[last_ev].tolist()
    append = edges.append
    if mode == "mpi":
        pinned = (
            (table.kind[first_ev] == int(EventKind.SEND))
            | (table.partner_send[first_ev] < 0)
        ).tolist()
        prev_ei = None
        cur_chare = -1
        for i, c in enumerate(chare_p):
            if c != cur_chare:
                cur_chare = c
                prev_ei = None
            if prev_ei is not None and (not relaxed_chain or pinned[i]):
                append((prev_ei, ei_first[i], EdgeKind.CHAIN))
            prev_ei = ei_last[i]
        return True
    ord_p = b_ordinal[present_ids].tolist()
    last_by_ordinal: Dict[int, int] = {}
    cur_chare = -1
    for i, c in enumerate(chare_p):
        if c != cur_chare:
            cur_chare = c
            last_by_ordinal = {}
        o = ord_p[i]
        if o >= 1:
            prev = last_by_ordinal.get(o - 1)
            if prev is not None:
                append((prev, ei_first[i], EdgeKind.SDAG))
        if o >= 0:
            last_by_ordinal[o] = ei_last[i]
    return True


def _message_edges_columnar(table: EventTable, event_init_arr,
                            edges: "EdgeList") -> None:
    """Vectorized :func:`repro.core.initial.message_edges` (same order)."""
    complete = (table.msg_send >= 0) & (table.msg_recv >= 0)
    if not complete.any():
        return
    a = event_init_arr[table.msg_send[complete]]
    b = event_init_arr[table.msg_recv[complete]]
    keep = (a != -1) & (b != -1)
    edges.extend_columns(a[keep], b[keep], int(EdgeKind.MESSAGE))


def build_initial_columnar(trace: Trace, mode: str = "charm",
                           absorb_tolerance: float = 1e-9,
                           relaxed_chain: bool = False, *,
                           state_cls=None, shard_plan=None,
                           shard_workers: Optional[int] = None,
                           window: Optional[int] = None) -> InitialStructure:
    """Columnar :func:`repro.core.initial.build_initial`.

    The absorption scan, block metadata, per-block event grouping,
    runtime-flag computation and run splitting are vectorized; the
    cross-block SDAG/CHAIN heuristics and message edges run the shared
    python helpers.  ``state_cls``/``shard_plan``/``shard_workers`` are
    the :func:`build_initial_batched` extension points; the defaults
    reproduce the plain columnar backend.  ``window`` (the ingest chunk
    window of a streamed trace) switches the absorption scan and the
    partition-run split onto the incremental folds of
    :mod:`repro.core.streaming` — partial partitions close window by
    window, with identical output.
    """
    if mode not in ("charm", "mpi"):
        raise ValueError(f"unknown mode {mode!r}")
    if state_cls is None:
        state_cls = ColumnarPartitionState
    table = EventTable.of(trace)
    xt = ExecTable.of(trace)
    n = table.n

    block_of_exec_arr, xid_arr, gstarts, serial_seq = (
        _scan_serial_blocks_columnar(trace, absorb_tolerance, xt,
                                     shard_plan=shard_plan,
                                     shard_workers=shard_workers,
                                     window=window)
    )
    nb = len(gstarts)

    boe = np.full(n, -1, np.int64)
    if trace.executions and n:
        has_exec = table.execution >= 0
        boe[has_exec] = block_of_exec_arr[table.execution[has_exec]]

    # One global (block, time, id) sort replaces the per-block sorts.
    seq = np.lexsort((np.arange(n), table.time, boe))
    seq = seq[boe[seq] >= 0]
    block_seq = boe[seq]
    if len(seq):
        bstarts = np.flatnonzero(np.r_[True, block_seq[1:] != block_seq[:-1]])
        bends = np.r_[bstarts[1:], len(seq)]
    else:
        bstarts = bends = np.empty(0, np.int64)
    # Per-block [lo, hi) bounds into ``seq`` (blocks without events get
    # the empty [0, 0) range).
    ev_lo = np.zeros(nb, np.int64)
    ev_hi = np.zeros(nb, np.int64)
    present = block_seq[bstarts]
    ev_lo[present] = bstarts
    ev_hi[present] = bends
    blocks = _make_blocks_columnar(xt, xid_arr, gstarts, serial_seq,
                                   seq, ev_lo, ev_hi)

    runtime_related = runtime_related_array(trace, table)
    rt_seq = runtime_related[seq]
    edges = EdgeList()
    if mode == "charm":
        # Runs of constant runtime-relatedness within each block, in the
        # same traversal order as the python loop (ascending block id,
        # events in (time, id) order).
        if len(seq) and window is not None:
            from repro.core.streaming import fold_partition_runs

            boundary, newblock = fold_partition_runs(block_seq, rt_seq,
                                                     window)
        elif len(seq):
            newblock = np.r_[True, block_seq[1:] != block_seq[:-1]]
            boundary = newblock.copy()
            boundary[1:] |= rt_seq[1:] != rt_seq[:-1]
        else:
            newblock = boundary = np.empty(0, np.bool_)
        pid_seq = np.cumsum(boundary) - 1
        rstarts = np.flatnonzero(boundary)
        rends = np.r_[rstarts[1:], len(seq)]
        init_events = LazyIntListOfLists(seq, rstarts, rends)
        init_runtime = rt_seq[rstarts].tolist()
        init_block = LazyIntList(block_seq[rstarts])
        inner_pids = pid_seq[np.flatnonzero(boundary & ~newblock)]
        edges.extend_columns(inner_pids - 1, inner_pids,
                             int(EdgeKind.BLOCK))
    else:
        # MPI: every event is its own partition, chained within blocks.
        pid_seq = np.arange(len(seq), dtype=np.int64)
        positions = np.arange(len(seq), dtype=np.int64)
        init_events = LazyIntListOfLists(seq, positions, positions + 1)
        init_runtime = rt_seq.tolist()
        init_block = LazyIntList(block_seq)
        if len(seq):
            same = np.flatnonzero(np.r_[False, block_seq[1:] == block_seq[:-1]])
        else:
            same = np.empty(0, np.int64)
        edges.extend_columns(same - 1, same, int(EdgeKind.CHAIN))

    event_init_arr = np.full(n, -1, np.int64)
    event_init_arr[seq] = pid_seq
    event_init = LazyIntList(event_init_arr)

    chained = _chain_edges_columnar(
        table, mode, relaxed_chain, edges, event_init_arr,
        blocks.chare, blocks.start, blocks.sdag_ordinal,
        present_ids=present, first_ev=seq[bstarts],
        last_ev=seq[bends - 1],
    )
    if not chained:  # ordering assumptions violated: shared python helper
        chare_chain_edges(trace, blocks, event_init, mode, relaxed_chain, edges)
    _message_edges_columnar(table, event_init_arr, edges)

    state = state_cls(
        trace, init_events, init_runtime, init_block, event_init, edges,
        table=table, event_init_arr=event_init_arr,
    )
    state.block_table = BlockTable(boe, len(blocks))
    return InitialStructure(blocks, LazyIntList(boe),
                            LazyIntList(block_of_exec_arr), state)


def build_initial_batched(trace: Trace, mode: str = "charm",
                          absorb_tolerance: float = 1e-9,
                          relaxed_chain: bool = False,
                          shard_workers: Optional[int] = None,
                          shard_plan=None,
                          window: Optional[int] = None) -> InitialStructure:
    """Initial partitions for the ``columnar_batched`` backend.

    Same columnar builder, two differences: the absorption scan is
    sharded by PE (:func:`pe_shard_plan`; pass ``shard_plan`` to
    override) with optional multi-process evaluation via
    ``shard_workers``, and the resulting state is a
    :class:`ColumnarBatchedPartitionState`, which switches the merge
    stages onto the batched union-find kernel.  Output is bit-identical
    to both other backends.
    """
    if shard_plan is None:
        shard_plan = pe_shard_plan(trace, ExecTable.of(trace))
    return build_initial_columnar(
        trace, mode, absorb_tolerance, relaxed_chain,
        state_cls=ColumnarBatchedPartitionState,
        shard_plan=shard_plan, shard_workers=shard_workers,
        window=window,
    )


# ----------------------------------------------------------------------
# Stage 5/6 kernels
# ----------------------------------------------------------------------
def sorted_phase_events(table: EventTable, phase_events: Sequence[int]):
    """Phase events as an array sorted by (time, id)."""
    evs = np.asarray(phase_events, np.int64)
    if not len(evs):
        return evs
    return evs[np.lexsort((evs, table.time[evs]))]


def physical_order_columnar(table: EventTable, ordered) -> Dict[int, List[int]]:
    """Vectorized :func:`repro.core.reorder.physical_order`.

    ``ordered`` must already be (time, id) sorted; keys appear in the
    order each chare first occurs in it, matching the python dict.
    """
    if not len(ordered):
        return {}
    chare = table.chare[ordered]
    order = np.argsort(chare, kind="stable")
    sorted_chares = chare[order]
    starts = np.flatnonzero(np.r_[True, sorted_chares[1:] != sorted_chares[:-1]])
    ends = np.r_[starts[1:], len(order)]
    events_sorted = ordered[order].tolist()
    perm = np.argsort(order[starts])  # first-occurrence order
    out: Dict[int, List[int]] = {}
    for gi in perm.tolist():
        s, e = int(starts[gi]), int(ends[gi])
        out[int(sorted_chares[s])] = events_sorted[s:e]
    return out


def reorder_w(table: EventTable, ordered, block_of_event) -> Dict[int, int]:
    """Vectorized :func:`repro.core.reorder._assign_w` (as a dict)."""
    if not len(ordered):
        return {}
    depth = _w_depth(table, ordered, block_of_event)
    return dict(zip(ordered.tolist(), depth.tolist()))


def _w_depth(table: EventTable, ordered, block_of_event):
    """The reorder w clock per position of ``ordered``.

    The replay dependency of each event is unique — the matched in-phase
    earlier send for a receive, else the previous event of its block —
    so w is the depth of a forest, computed by pointer doubling.
    """
    n = len(ordered)
    pos = np.arange(n, dtype=np.int64)
    block = block_of_event[ordered]
    prev = np.full(n, -1, np.int64)
    order = np.argsort(block, kind="stable")
    blocks_sorted = block[order]
    same = np.flatnonzero(blocks_sorted[1:] == blocks_sorted[:-1])
    prev[order[same + 1]] = order[same]
    lookup = np.full(table.n, -1, np.int64)
    lookup[ordered] = pos
    partner = table.partner_send[ordered]
    partner_pos = np.where(partner >= 0, lookup[np.clip(partner, 0, None)], -1)
    use_send = (
        (table.kind[ordered] == int(EventKind.RECV))
        & (partner_pos >= 0)
        & (partner_pos < pos)  # replicates the ``send in w`` replay check
    )
    parent = np.where(use_send, partner_pos, prev)
    depth = (parent >= 0).astype(np.int64)
    jump = parent.copy()
    while True:
        live = np.flatnonzero(jump >= 0)
        if not len(live):
            break
        target = jump[live]
        depth[live] += depth[target]
        jump[live] = jump[target]
    return depth


def trigger_send_array(table: EventTable, ordered):
    """Matched in-phase send per position of ``ordered`` (−1 when none)."""
    lookup = np.full(table.n, -1, np.int64)
    lookup[ordered] = np.arange(len(ordered))
    partner = table.partner_send[ordered]
    in_phase = np.where(partner >= 0, lookup[np.clip(partner, 0, None)], -1) >= 0
    is_recv = table.kind[ordered] == int(EventKind.RECV)
    return np.where(is_recv & in_phase, partner, -1)


def trigger_sends(table: EventTable, ordered) -> Dict[int, int]:
    """Matched in-phase send per phase event (−1 when none) as a dict.

    Feeds ``reordered_order_task``'s trigger lookup without per-block
    message chasing.
    """
    if not len(ordered):
        return {}
    send = trigger_send_array(table, ordered)
    return dict(zip(ordered.tolist(), send.tolist()))


def task_order_columnar(table: EventTable, ordered, block_of_event,
                        inv_keys: List[Tuple]) -> Dict[int, List[int]]:
    """Vectorized :func:`repro.core.reorder.reordered_order_task`.

    Produces the same per-chare lists in the same dict order.
    ``inv_keys[c]`` is the invoker tie-break tuple for chare ``c`` —
    ``(chare.id,)`` for ``tie_break="chare_id"`` or the array index for
    ``"index"`` — matching ``invoker_key``.  The recursive ``block_key``
    tuple flattens into a chain walk: each hop appends the hopped-to
    block's ``(w of first event, invoker key)`` pair, up to
    :data:`~repro.core.reorder.MAX_KEY_DEPTH` hops.
    """
    n = len(ordered)
    if n == 0:
        return {}
    depth = _w_depth(table, ordered, block_of_event)
    trigger = trigger_send_array(table, ordered)
    block = block_of_event[ordered]
    order = np.argsort(block, kind="stable")
    bsorted = block[order]
    starts = np.flatnonzero(np.r_[True, bsorted[1:] != bsorted[:-1]])
    ends = np.r_[starts[1:], n]
    ev_sorted = ordered[order].tolist()  # per-block groups, (time, id) order
    firstpos = order[starts]  # position in ``ordered`` of each block's first
    g_block = bsorted[starts]
    ng = len(g_block)
    g_w = depth[firstpos]
    g_send = trigger[firstpos]
    valid = g_send >= 0
    send_clip = np.clip(g_send, 0, None)
    g_src = np.where(valid, block_of_event[send_clip], -1)
    g_inv_chare = np.where(valid, table.chare[send_clip], -1)
    # Next block of the key chain: the trigger sender's block when it is a
    # different block (an in-phase send's block is always in the phase, so
    # the python path's membership check is vacuous here).
    src_gi = np.searchsorted(g_block, np.clip(g_src, int(g_block[0]), None))
    nxt = np.where(valid & (g_src != g_block), src_gi, -1)

    first_ev = ordered[firstpos]
    g_time = table.time[first_ev].tolist()
    g_chare = table.chare[first_ev].tolist()
    w_l = g_w.tolist()
    nxt_l = nxt.tolist()
    block_l = g_block.tolist()
    none_key = (-1,)
    inv_l = [inv_keys[c] if c >= 0 else none_key
             for c in g_inv_chare.tolist()]
    keys: List[Tuple] = []
    for gi in range(ng):
        parts = [w_l[gi]]
        parts.extend(inv_l[gi])
        cur = gi
        hops = 0
        while hops < MAX_KEY_DEPTH and nxt_l[cur] >= 0:
            cur = nxt_l[cur]
            hops += 1
            parts.append(w_l[cur])
            parts.extend(inv_l[cur])
        keys.append(tuple(parts))

    # Chares keyed in block first-occurrence order — the insertion order
    # of the python implementation's blocks_by_chare dict.
    perm = np.argsort(firstpos).tolist()
    blocks_by_chare: Dict[int, List[int]] = {}
    for gi in perm:
        blocks_by_chare.setdefault(g_chare[gi], []).append(gi)
    starts_l = starts.tolist()
    ends_l = ends.tolist()
    out: Dict[int, List[int]] = {}
    for chare, glist in blocks_by_chare.items():
        glist.sort(key=lambda gi: (keys[gi], g_time[gi], block_l[gi]))
        chunk: List[int] = []
        for gi in glist:
            chunk.extend(ev_sorted[starts_l[gi]:ends_l[gi]])
        out[chare] = chunk
    return out


def local_steps_columnar(table: EventTable, chare_orders: Dict[int, List[int]]):
    """Vectorized :func:`repro.core.stepping.assign_local_steps`.

    Iterates chain relaxation (segmented running max over the per-chare
    orders) and receive relaxation (``step[recv] >= step[send] + 1``) to
    the least fixed point, which equals the Kahn longest path.  Returns
    ``(events, steps, max_step)`` or ``None`` when the phase needs the
    python fallback (suspected cycle or overly deep message chains).
    """
    lists = [lst for lst in chare_orders.values() if lst]
    total = sum(len(lst) for lst in lists)
    if total == 0:
        return np.empty(0, np.int64), np.empty(0, np.int64), -1
    concat = np.fromiter((ev for lst in lists for ev in lst), np.int64, total)
    lens = np.fromiter((len(lst) for lst in lists), np.int64, len(lists))
    seg = np.repeat(np.arange(len(lists), dtype=np.int64), lens)
    pos = np.arange(total, dtype=np.int64)
    lookup = np.full(table.n, -1, np.int64)
    lookup[concat] = pos
    partner = table.partner_send[concat]
    valid = (table.kind[concat] == int(EventKind.RECV)) & (partner >= 0)
    partner_pos = np.where(valid, lookup[np.clip(partner, 0, None)], -1)
    recv_idx = np.flatnonzero(partner_pos >= 0)
    send_idx = partner_pos[recv_idx]
    # Segment isolation: per-segment offsets dominate the value range so a
    # single global running max never leaks across chare orders.
    base = seg * np.int64(2 * total + 4)
    shift = base - pos
    steps = np.zeros(total, np.int64)
    for _ in range(MAX_STEP_ROUNDS):
        relaxed = np.maximum.accumulate(steps + shift) - shift
        if len(recv_idx):
            np.maximum.at(relaxed, recv_idx, relaxed[send_idx] + 1)
        if np.array_equal(relaxed, steps):
            return concat, steps, int(steps.max())
        steps = relaxed
        if int(steps.max()) > total:
            return None  # growing without bound: dependency cycle
    return None


def compute_leaps_columnar(state: ColumnarPartitionState) -> Dict[int, int]:
    """Vectorized :func:`repro.core.leaps.compute_leaps`.

    Longest-path depth by Bellman relaxation over the contracted unique
    edges.  Values match the python Kahn pass; the dict *order* differs
    (ascending root id), so use it only where consumers re-sort — the
    pipeline's phase construction does.
    """
    roots = state.roots_np()
    if not len(roots):
        return {}
    uniq, inverse = np.unique(roots, return_inverse=True)
    k = len(uniq)
    src, dst, _kind = state.edge_arrays()
    if len(src):
        es = inverse[src]
        ed = inverse[dst]
        keep = es != ed
        enc = np.unique(es[keep] * np.int64(k) + ed[keep])
        es = enc // k
        ed = enc % k
    else:
        es = ed = np.empty(0, np.int64)
    leap = np.zeros(k, np.int64)
    for _ in range(k + 2):
        relaxed = leap.copy()
        if len(es):
            np.maximum.at(relaxed, ed, leap[es] + 1)
        if np.array_equal(relaxed, leap):
            return dict(zip(uniq.tolist(), leap.tolist()))
        leap = relaxed
    raise ValueError("partition graph contains a cycle; cycle-merge first")
