"""Incremental (windowed) operators for the initial-partition stage.

The serial-block absorption predicate and the partition-run split are
both *local*: each decision depends only on the (previous, current)
record pair (``repro.core.initial.scan_serial_blocks`` carries no other
state between iterations).  That makes them foldable — a window of the
input plus a one-record carry from the previous window produces exactly
the flags the whole-array kernel produces, so a streamed trace can be
partitioned as its windows close without ever holding more than one
window of scan state.

:func:`absorb_flags_windowed` and :class:`StreamingRunFolder` are those
folds; ``build_initial_columnar(..., window=...)`` drives them when the
trace carries an ingest window (set by the chunked reader), and the
differential twins in ``tests/test_streaming_ingest.py`` pin the
bit-identity against the batch kernels.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

try:  # Same soft dependency policy as repro.core.columnar.
    import numpy as np

    HAVE_NUMPY = True
except Exception:  # pragma: no cover - exercised only in numpy-less installs
    np = None
    HAVE_NUMPY = False


def absorb_flags_windowed(serial, pe, start, end, first_positions,
                          absorb_tolerance: float, window: int):
    """Windowed twin of :func:`repro.core.columnar._absorb_flags`.

    Processes the execution span in ``window``-sized slices with a
    one-element lookback carry; the pairwise predicate never sees more
    than ``window + 1`` rows at once.  Equal to the whole-array kernel
    by construction (the predicate is pairwise and both force
    chare-first positions to False afterwards).
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    total = len(serial)
    absorb = np.zeros(total, np.bool_)
    # Position 0 has no predecessor, exactly like the batch kernel.
    for w0 in range(1, total, window):
        w1 = min(w0 + window, total)
        lo = w0 - 1
        absorb[w0:w1] = (
            (~serial[lo:w1 - 1]) & serial[w0:w1]
            & (pe[w0:w1] == pe[lo:w1 - 1])
            & (np.abs(start[w0:w1] - end[lo:w1 - 1]) <= absorb_tolerance)
        )
    if total:
        absorb[first_positions] = False
    return absorb


class StreamingRunFolder:
    """Folds windows of the (block, time)-sorted event sequence into
    partition-run flags.

    Feed the per-event serial-block ids and runtime-relatedness flags
    window by window (:meth:`feed`); the folder carries the last record
    of each window into the next, counts the runs that close as windows
    complete, and :meth:`finalize` returns the concatenated
    ``(boundary, newblock)`` flag arrays — bit-identical to the
    whole-array computation in :func:`repro.core.columnar.
    build_initial_columnar`:

    * ``newblock[i]`` — event *i* opens a new serial block;
    * ``boundary[i]`` — event *i* opens a new partition run (a block
      change or a runtime-relatedness flip).
    """

    def __init__(self) -> None:
        self._boundary_chunks: List = []
        self._newblock_chunks: List = []
        self._prev_block: Optional[int] = None
        self._prev_rt: Optional[bool] = None
        #: Partition runs completed so far (a run closes when the next
        #: boundary opens); the final open run closes at finalize.
        self.closed_runs = 0
        self.windows = 0

    def feed(self, block_chunk, rt_chunk) -> int:
        """Fold one window; returns the number of runs it closed."""
        k = len(block_chunk)
        if k != len(rt_chunk):
            raise ValueError("block and runtime windows differ in length")
        if k == 0:
            return 0
        newblock = np.empty(k, np.bool_)
        boundary = np.empty(k, np.bool_)
        if self._prev_block is None:
            newblock[0] = True
            boundary[0] = True
        else:
            newblock[0] = bool(block_chunk[0] != self._prev_block)
            boundary[0] = bool(newblock[0]
                               or rt_chunk[0] != self._prev_rt)
        newblock[1:] = block_chunk[1:] != block_chunk[:-1]
        boundary[1:] = newblock[1:] | (rt_chunk[1:] != rt_chunk[:-1])
        opened = int(boundary.sum())
        # Every boundary except the very first run's opener closes the
        # run before it.
        closed = opened if self._prev_block is not None else max(opened - 1, 0)
        self.closed_runs += closed
        self._prev_block = int(block_chunk[-1])
        self._prev_rt = bool(rt_chunk[-1])
        self._boundary_chunks.append(boundary)
        self._newblock_chunks.append(newblock)
        self.windows += 1
        return closed

    def finalize(self) -> Tuple:
        """Concatenated ``(boundary, newblock)`` over every fed window."""
        if not self._boundary_chunks:
            empty = np.empty(0, np.bool_)
            return empty, empty
        if self._prev_block is not None:
            self.closed_runs += 1  # the still-open final run
            self._prev_block = None
        return (np.concatenate(self._boundary_chunks),
                np.concatenate(self._newblock_chunks))


def fold_partition_runs(block_seq, rt_seq, window: int):
    """Run :class:`StreamingRunFolder` over a full sequence in windows.

    The convenience driver ``build_initial_columnar`` calls when the
    trace was ingested in chunks; ``window`` is the ingest window.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    folder = StreamingRunFolder()
    for w0 in range(0, len(block_seq), window):
        folder.feed(block_seq[w0:w0 + window], rt_seq[w0:w0 + window])
    return folder.finalize()
