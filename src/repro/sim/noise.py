"""Computation-time noise models.

Entry-method compute costs pass through a noise model before being applied,
letting experiments inject the performance pathologies the paper's metrics
are designed to surface: OS jitter (idle experienced), a straggler PE
(imbalance, Figure 14), or a straggler chare (differential duration,
Figure 15).
"""

from __future__ import annotations

import random
from typing import Protocol, Sequence


class NoiseModel(Protocol):
    """Perturbs a nominal compute duration."""

    def perturb(self, pe: int, chare: int, duration: float) -> float:
        """Return the actual duration of a compute span."""
        ...


class NoNoise:
    """Identity model: compute costs are exact."""

    def perturb(self, pe: int, chare: int, duration: float) -> float:
        return duration


class GaussianNoise:
    """Multiplicative Gaussian noise, truncated to stay positive.

    ``sigma`` is the relative standard deviation (0.05 = 5% variation).
    """

    def __init__(self, sigma: float = 0.05, seed: int = 0):
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.sigma = sigma
        self._rng = random.Random(seed)

    def perturb(self, pe: int, chare: int, duration: float) -> float:
        factor = max(0.01, self._rng.gauss(1.0, self.sigma))
        return duration * factor


class PeriodicJitter:
    """OS-noise style interruptions: a compute span crossing a jitter window
    on its PE is extended by the window's cost.

    Windows repeat every ``period`` time units, staggered per PE so that
    interruptions hit different PEs at different times (the scenario
    task-based runtimes tolerate well, per the paper's motivation).
    """

    def __init__(self, period: float = 5000.0, cost: float = 200.0, stagger: float = 700.0):
        if period <= 0:
            raise ValueError("period must be positive")
        self.period = period
        self.cost = cost
        self.stagger = stagger
        # Tracks per-PE virtual time so jitter windows land deterministically.
        self._elapsed: dict = {}

    def perturb(self, pe: int, chare: int, duration: float) -> float:
        start = self._elapsed.get(pe, (pe * self.stagger) % self.period)
        end = start + duration
        hits = int(end // self.period) - int(start // self.period)
        self._elapsed[pe] = end % (self.period * 1e6)
        return duration + hits * self.cost


class SlowProcessor:
    """One or more PEs run slower by a constant factor (straggler node)."""

    def __init__(self, slow_pes: Sequence[int], factor: float = 2.0):
        if factor <= 0:
            raise ValueError("factor must be positive")
        self.slow_pes = frozenset(slow_pes)
        self.factor = factor

    def perturb(self, pe: int, chare: int, duration: float) -> float:
        return duration * self.factor if pe in self.slow_pes else duration


class ChareSlowdown:
    """One or more chares take longer per task (data-dependent hot spot).

    This reproduces the Figure 15 scenario: one chare's compute block is
    significantly longer than its peers at the same logical step.
    """

    def __init__(self, slow_chares: Sequence[int], factor: float = 3.0):
        if factor <= 0:
            raise ValueError("factor must be positive")
        self.slow_chares = frozenset(slow_chares)
        self.factor = factor

    def perturb(self, pe: int, chare: int, duration: float) -> float:
        return duration * self.factor if chare in self.slow_chares else duration


class ComposedNoise:
    """Applies several noise models in sequence."""

    def __init__(self, *models: NoiseModel):
        self.models = models

    def perturb(self, pe: int, chare: int, duration: float) -> float:
        for model in self.models:
            duration = model.perturb(pe, chare, duration)
        return duration
