"""Execution substrates: discrete-event simulators that emit traces.

The paper traced real Charm++ and MPI applications on an InfiniBand
cluster.  This package replaces that testbed with two simulators built on a
common discrete-event core:

* :mod:`repro.sim.charm` — a message-driven chare runtime with per-PE
  scheduling queues, chare arrays, broadcasts, spanning-tree reductions
  through per-PE ``CkReductionMgr`` runtime chares, SDAG-style serial
  sections, and a configurable tracing module (Section 5 of the paper).
* :mod:`repro.sim.mpi` — a rank/coroutine simulator for process-centric
  message-passing programs with point-to-point matching and collectives,
  traced in the style of Score-P (one region per call, collective
  internals unrecorded).

Both emit :class:`repro.trace.Trace` objects, which is all the analysis in
:mod:`repro.core` consumes — so the substitution of simulator for testbed
preserves the behaviour under study.
"""

from repro.sim.engine import Simulator
from repro.sim.network import (
    ConstantLatency,
    GammaLatency,
    LatencyModel,
    UniformLatency,
)
from repro.sim.noise import (
    ChareSlowdown,
    ComposedNoise,
    GaussianNoise,
    NoiseModel,
    NoNoise,
    PeriodicJitter,
    SlowProcessor,
)

__all__ = [
    "Simulator",
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "GammaLatency",
    "NoiseModel",
    "NoNoise",
    "GaussianNoise",
    "PeriodicJitter",
    "SlowProcessor",
    "ChareSlowdown",
    "ComposedNoise",
]
