"""Rank-coroutine MPI simulator.

Each rank runs a generator of operations produced through its
:class:`RankApi`.  The engine is a virtual-time worklist simulator: ranks
only interact through explicit matches (point-to-point messages and
collectives), so no global event heap is needed — a blocked rank's clock
jumps to ``max(call time, dependency availability)`` when its match
appears, and recv-side wait time is recorded as an idle interval.

Supported operations::

    yield comm.compute(dt)                       # burn CPU time
    yield comm.send(dst, tag=0, size=8, payload=x)
    payload = yield comm.recv(src, tag=0)
    result  = yield comm.allreduce(value, op="max", size=8)
    yield comm.barrier()

Wildcard receives (``MPI_ANY_SOURCE``) are intentionally unsupported: a
virtual-time engine cannot match them deterministically, and none of the
paper's proxy apps need them.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.sim.charm.reduction import combine
from repro.sim.network import ConstantLatency, LatencyModel
from repro.sim.noise import NoiseModel, NoNoise
from repro.trace.events import EventKind
from repro.trace.model import Trace, TraceBuilder


# --------------------------------------------------------------------------
# Operation objects yielded by rank generators
# --------------------------------------------------------------------------
@dataclass
class _Compute:
    dt: float


@dataclass
class _Send:
    dst: int
    tag: int
    size: float
    payload: Any


@dataclass
class _Recv:
    src: int
    tag: int


@dataclass
class _RecvAny:
    sources: Tuple[int, ...]
    tag: int


@dataclass
class _RecvMerge:
    sources: Tuple[int, ...]
    tag: int
    cost_per_unit: float


@dataclass(frozen=True)
class Request:
    """Handle returned by nonblocking operations, completed by waitall."""

    kind: str  # "send" | "recv"
    src: int
    tag: int
    serial: int


@dataclass
class _IRecv:
    src: int
    tag: int


@dataclass
class _Waitall:
    requests: Tuple[Request, ...]


@dataclass
class _Collective:
    kind: str  # "allreduce" | "barrier" | "reduce" | "bcast"
    value: Any
    op: str
    size: float
    root: int = 0


class RankApi:
    """Factory of operation objects for one rank's generator."""

    def __init__(self, rank: int, num_ranks: int):
        self.rank = rank
        self.num_ranks = num_ranks

    def compute(self, dt: float) -> _Compute:
        """Spend ``dt`` time units computing (noise model applies)."""
        return _Compute(dt)

    def send(self, dst: int, tag: int = 0, size: float = 8.0,
             payload: Any = None) -> _Send:
        """Eager send to ``dst``; completes after the call overhead."""
        if not (0 <= dst < self.num_ranks):
            raise ValueError(f"send: bad destination rank {dst}")
        if dst == self.rank:
            raise ValueError("send to self is not supported")
        return _Send(dst, tag, size, payload)

    def recv(self, src: int, tag: int = 0) -> _Recv:
        """Blocking receive from ``src``; yields the message payload."""
        if not (0 <= src < self.num_ranks):
            raise ValueError(f"recv: bad source rank {src}")
        return _Recv(src, tag)

    def recv_any(self, sources, tag: int = 0) -> _RecvAny:
        """Waitany-style receive: matches whichever of ``sources`` arrives
        first; yields ``(src, payload)``.

        This models the MPI_ANY_SOURCE / MPI_Waitany processing pattern of
        the paper's merge-tree case study, where irregular arrival order
        scrambles the receive sequence (Figure 10).  Matching picks the
        earliest known arrival among in-flight candidates; with monotonic
        sender clocks this coincides with true arrival order.
        """
        sources = tuple(sources)
        if not sources:
            raise ValueError("recv_any: empty source set")
        for src in sources:
            if not (0 <= src < self.num_ranks):
                raise ValueError(f"recv_any: bad source rank {src}")
        return _RecvAny(sources, tag)

    def recv_merge(self, sources, tag: int = 0,
                   cost_per_unit: float = 0.0) -> _RecvMerge:
        """Waitany loop: receive one message from *each* source, processing
        them strictly in arrival order; yields ``[(src, payload), ...]``.

        After each receive, ``cost_per_unit * payload`` compute time is
        charged (``payload`` must then be numeric) — modelling e.g. merging
        a child's tree before servicing the next arrival, exactly the
        irregular-receive-order pattern of the paper's merge-tree case
        study (Figure 10).  Unlike :meth:`recv_any`, arrival order is exact:
        the engine waits until every source's message is in flight before
        replaying them.
        """
        sources = tuple(sources)
        if not sources:
            raise ValueError("recv_merge: empty source set")
        for src in sources:
            if not (0 <= src < self.num_ranks):
                raise ValueError(f"recv_merge: bad source rank {src}")
        return _RecvMerge(sources, tag, cost_per_unit)

    def isend(self, dst: int, tag: int = 0, size: float = 8.0,
              payload: Any = None) -> _Send:
        """Nonblocking send.

        Sends in this simulator are eager (they complete after the call
        overhead), so ``isend`` is operationally ``send``; it exists so
        ported MPI code keeps its shape.  No request bookkeeping is
        needed — there is nothing left to wait for.
        """
        return self.send(dst, tag, size, payload)

    def irecv(self, src: int, tag: int = 0) -> _IRecv:
        """Nonblocking receive: yields a :class:`Request` immediately.

        The message is matched when :meth:`waitall` is called; posting
        several irecvs and waiting on them completes them in *arrival*
        order, like a Waitall with out-of-order progress.
        """
        if not (0 <= src < self.num_ranks):
            raise ValueError(f"irecv: bad source rank {src}")
        return _IRecv(src, tag)

    def waitall(self, requests) -> _Waitall:
        """Complete a set of irecv requests; yields {request: payload}."""
        requests = tuple(requests)
        for req in requests:
            if not isinstance(req, Request):
                raise TypeError(f"waitall expects Request handles, got {req!r}")
        return _Waitall(requests)

    def allreduce(self, value: Any = None, op: str = "max",
                  size: float = 8.0) -> _Collective:
        """Blocking allreduce; yields the reduced value."""
        return _Collective("allreduce", value, op, size)

    def barrier(self) -> _Collective:
        """Blocking barrier (an allreduce of nothing)."""
        return _Collective("barrier", None, "nop", 1.0)

    def reduce(self, value: Any = None, op: str = "sum", root: int = 0,
               size: float = 8.0) -> _Collective:
        """Rooted reduction; the root yields the combined value, others None."""
        if not (0 <= root < self.num_ranks):
            raise ValueError(f"reduce: bad root rank {root}")
        return _Collective("reduce", value, op, size, root)

    def bcast(self, value: Any = None, root: int = 0,
              size: float = 8.0) -> _Collective:
        """Rooted broadcast; every rank yields the root's value."""
        if not (0 <= root < self.num_ranks):
            raise ValueError(f"bcast: bad root rank {root}")
        return _Collective("bcast", value, "bcast", size, root)


@dataclass
class _InFlight:
    arrival: float
    payload: Any


class _RankState:
    __slots__ = ("gen", "clock", "blocked", "coll_count", "api", "chare_id",
                 "req_serial")

    def __init__(self, gen: Generator, api: RankApi, chare_id: int):
        self.gen = gen
        self.clock = 0.0
        self.blocked: Optional[object] = None  # the op we are waiting on
        self.coll_count = 0
        self.api = api
        self.chare_id = chare_id
        self.req_serial = 0


class _CollState:
    __slots__ = ("arrived", "value", "op", "size", "call_times")

    def __init__(self, n: int):
        self.arrived = 0
        self.value: Any = None
        self.op = "nop"
        self.size = 8.0
        self.call_times: List[float] = [0.0] * n


class MpiSimulation:
    """Runs a message-passing program and produces a trace.

    Parameters
    ----------
    num_ranks:
        Number of processes; each becomes one application chare pinned to
        its own PE in the trace.
    latency, noise:
        Network and compute-perturbation models (see :mod:`repro.sim`).
    call_overhead:
        Fixed cost of every MPI call (the traced region's minimum width).
    """

    def __init__(
        self,
        num_ranks: int,
        latency: Optional[LatencyModel] = None,
        noise: Optional[NoiseModel] = None,
        call_overhead: float = 0.3,
        metadata: Optional[Dict[str, object]] = None,
    ):
        if num_ranks <= 0:
            raise ValueError("num_ranks must be positive")
        self.num_ranks = num_ranks
        self.latency: LatencyModel = latency or ConstantLatency()
        self.noise: NoiseModel = noise or NoNoise()
        self.call_overhead = call_overhead
        meta = dict(metadata or {})
        meta.setdefault("model", "mpi")
        self.builder = TraceBuilder(num_pes=num_ranks, metadata=meta)
        self._entry_ids: Dict[str, int] = {}
        self._ranks: List[_RankState] = []
        # (src, dst, tag) -> FIFO of in-flight messages (non-overtaking).
        self._mailboxes: Dict[Tuple[int, int, int], deque] = {}
        self._collectives: Dict[int, _CollState] = {}
        self._finished = 0

    # ------------------------------------------------------------------
    def _entry(self, name: str) -> int:
        if name not in self._entry_ids:
            self._entry_ids[name] = self.builder.add_entry(name, chare_type="MPI")
        return self._entry_ids[name]

    # ------------------------------------------------------------------
    def run(self, rank_fn: Callable[[int, RankApi], Generator]) -> None:
        """Execute ``rank_fn`` on every rank to completion.

        Raises ``RuntimeError`` on deadlock (all unfinished ranks blocked
        with no matching message or collective ever coming).
        """
        for rank in range(self.num_ranks):
            api = RankApi(rank, self.num_ranks)
            chare_id = self.builder.add_chare(
                f"rank{rank}", is_runtime=False, home_pe=rank
            )
            gen = rank_fn(rank, api)
            self._ranks.append(_RankState(gen, api, chare_id))

        worklist = deque(range(self.num_ranks))
        queued = set(worklist)
        progressed = True
        while worklist:
            rank = worklist.popleft()
            queued.discard(rank)
            newly_runnable = self._advance(rank)
            for r in newly_runnable:
                if r not in queued:
                    worklist.append(r)
                    queued.add(r)
        unfinished = [i for i, st in enumerate(self._ranks) if st.gen is not None]
        if unfinished:
            details = ", ".join(
                f"rank {i} blocked on {type(self._ranks[i].blocked).__name__}"
                for i in unfinished[:8]
            )
            raise RuntimeError(f"MPI simulation deadlocked: {details}")

    # ------------------------------------------------------------------
    def _advance(self, rank: int) -> List[int]:
        """Run one rank until it blocks or finishes; returns unblocked peers."""
        st = self._ranks[rank]
        if st.gen is None:
            return []
        unblocked: List[int] = []
        send_value: Any = None
        while True:
            # A blocked rank re-entered here has already had its op completed
            # by whoever unblocked it (completion stored in st.blocked slot).
            try:
                op = st.gen.send(send_value)
            except StopIteration:
                st.gen = None
                return unblocked
            send_value = None

            if isinstance(op, _Compute):
                st.clock += self.noise.perturb(rank, st.chare_id, op.dt)
            elif isinstance(op, _Send):
                self._do_send(rank, st, op, unblocked)
            elif isinstance(op, _Recv):
                done, send_value = self._try_recv(rank, st, op)
                if not done:
                    st.blocked = op
                    return unblocked
            elif isinstance(op, _RecvAny):
                done, send_value = self._try_recv_any(rank, st, op)
                if not done:
                    st.blocked = op
                    return unblocked
            elif isinstance(op, _RecvMerge):
                done, send_value = self._try_recv_merge(rank, st, op)
                if not done:
                    st.blocked = op
                    return unblocked
            elif isinstance(op, _IRecv):
                st.req_serial += 1
                send_value = Request("recv", op.src, op.tag, st.req_serial)
            elif isinstance(op, _Waitall):
                done, send_value = self._try_waitall(rank, st, op)
                if not done:
                    st.blocked = op
                    return unblocked
            elif isinstance(op, _Collective):
                done, send_value = self._join_collective(rank, st, op, unblocked)
                if not done:
                    st.blocked = op
                    return unblocked
            else:
                raise TypeError(f"rank {rank} yielded unknown operation {op!r}")

    # -- point-to-point -----------------------------------------------------
    def _do_send(self, rank: int, st: _RankState, op: _Send,
                 unblocked: List[int]) -> None:
        start = st.clock
        exec_id = self.builder.add_execution(
            st.chare_id, self._entry("MPI_Send"), rank, start, start + self.call_overhead
        )
        send_ev = self.builder.add_event(EventKind.SEND, st.chare_id, rank, start, exec_id)
        arrival = start + self.latency.latency(rank, op.dst, op.size)
        key = (rank, op.dst, op.tag)
        box = self._mailboxes.setdefault(key, deque())
        box.append((_InFlight(arrival, op.payload), send_ev))
        st.clock = start + self.call_overhead
        dst_state = self._ranks[op.dst]
        blocked_op = dst_state.blocked
        if isinstance(blocked_op, _Recv):
            if blocked_op.src == rank and blocked_op.tag == op.tag:
                done, value = self._try_recv(op.dst, dst_state, blocked_op)
                if done:
                    dst_state.blocked = None
                    self._resume_with(op.dst, value, unblocked)
        elif isinstance(blocked_op, _RecvAny):
            if rank in blocked_op.sources and blocked_op.tag == op.tag:
                done, value = self._try_recv_any(op.dst, dst_state, blocked_op)
                if done:
                    dst_state.blocked = None
                    self._resume_with(op.dst, value, unblocked)
        elif isinstance(blocked_op, _RecvMerge):
            if rank in blocked_op.sources and blocked_op.tag == op.tag:
                done, value = self._try_recv_merge(op.dst, dst_state, blocked_op)
                if done:
                    dst_state.blocked = None
                    self._resume_with(op.dst, value, unblocked)
        elif isinstance(blocked_op, _Waitall):
            if any(r.src == rank and r.tag == op.tag
                   for r in blocked_op.requests):
                done, value = self._try_waitall(op.dst, dst_state, blocked_op)
                if done:
                    dst_state.blocked = None
                    self._resume_with(op.dst, value, unblocked)

    def _resume_with(self, rank: int, value: Any, unblocked: List[int]) -> None:
        """Queue ``rank`` for re-advancement, feeding ``value`` to its recv.

        We cannot re-enter generators reentrantly here, so the value is
        delivered through a one-shot pending slot consumed by _advance.
        """
        st = self._ranks[rank]
        # Wrap the generator so its next pull returns the pending value.
        original_gen = st.gen

        class _Primed:
            def __init__(self, gen, first):
                self._gen = gen
                self._first = first
                self._used = False

            def send(self, val):
                if not self._used:
                    self._used = True
                    return self._gen.send(self._first)
                return self._gen.send(val)

        st.gen = _Primed(original_gen, value)  # type: ignore[assignment]
        unblocked.append(rank)

    def _try_recv(self, rank: int, st: _RankState, op: _Recv) -> Tuple[bool, Any]:
        key = (op.src, rank, op.tag)
        box = self._mailboxes.get(key)
        if not box:
            return False, None
        inflight, _send_ev = box.popleft()
        call_time = st.clock
        complete = max(call_time, inflight.arrival)
        if complete > call_time:
            # Wait time inside the receive — recorded as processor idle,
            # which drives the idle-experienced metric.
            self.builder.add_idle(rank, call_time, complete)
        end = complete + self.call_overhead
        exec_id = self.builder.add_execution(
            st.chare_id, self._entry("MPI_Recv"), rank, call_time, end
        )
        recv_ev = self.builder.add_event(
            EventKind.RECV, st.chare_id, rank, complete, exec_id
        )
        self.builder.add_message(send_event=_send_ev, recv_event=recv_ev)
        self.builder.set_execution_recv(exec_id, recv_ev)
        st.clock = end
        return True, inflight.payload

    def _try_recv_any(self, rank: int, st: _RankState,
                      op: _RecvAny) -> Tuple[bool, Any]:
        """Complete a Waitany receive with the earliest-arriving candidate."""
        best_src = None
        best_arrival = float("inf")
        for src in op.sources:
            box = self._mailboxes.get((src, rank, op.tag))
            if box and box[0][0].arrival < best_arrival:
                best_arrival = box[0][0].arrival
                best_src = src
        if best_src is None:
            return False, None
        done, payload = self._try_recv(rank, st, _Recv(best_src, op.tag))
        assert done
        return True, (best_src, payload)

    def _try_recv_merge(self, rank: int, st: _RankState,
                        op: _RecvMerge) -> Tuple[bool, Any]:
        """Complete a merge-receive once every source's message is known.

        Messages are replayed strictly in (virtual) arrival order with the
        per-message merge cost interleaved — exactly how a Waitany loop
        would have executed them.
        """
        pending = []
        for src in op.sources:
            box = self._mailboxes.get((src, rank, op.tag))
            if not box:
                return False, None
            pending.append((box[0][0].arrival, src))
        pending.sort()
        results = []
        for _arrival, src in pending:
            _done, payload = self._try_recv(rank, st, _Recv(src, op.tag))
            if op.cost_per_unit:
                st.clock += self.noise.perturb(
                    rank, st.chare_id, op.cost_per_unit * payload
                )
            results.append((src, payload))
        return True, results

    def _try_waitall(self, rank: int, st: _RankState,
                     op: _Waitall) -> Tuple[bool, Any]:
        """Complete posted irecvs once all their messages are in flight.

        Messages are consumed in arrival order across the requests (the
        progress engine completes whichever lands first); within one
        (src, tag) channel, FIFO matching pairs the k-th posted request
        with the k-th message, preserving MPI non-overtaking.
        """
        needed: Dict[Tuple[int, int], int] = {}
        for req in op.requests:
            needed[(req.src, req.tag)] = needed.get((req.src, req.tag), 0) + 1
        for (src, tag), count in needed.items():
            box = self._mailboxes.get((src, rank, tag))
            if not box or len(box) < count:
                return False, None
        # Per-channel queues of pending requests, in posted order.
        pending: Dict[Tuple[int, int], List[Request]] = {}
        for req in sorted(op.requests, key=lambda r: r.serial):
            pending.setdefault((req.src, req.tag), []).append(req)
        results: Dict[Request, Any] = {}
        remaining = dict(needed)
        while remaining:
            # Pop whichever channel's head message arrived first.
            best_key = None
            best_arrival = float("inf")
            for (src, tag), count in remaining.items():
                box = self._mailboxes[(src, rank, tag)]
                if box[0][0].arrival < best_arrival:
                    best_arrival = box[0][0].arrival
                    best_key = (src, tag)
            src, tag = best_key
            _done, payload = self._try_recv(rank, st, _Recv(src, tag))
            results[pending[best_key].pop(0)] = payload
            remaining[best_key] -= 1
            if not remaining[best_key]:
                del remaining[best_key]
        return True, results

    # -- collectives ---------------------------------------------------------
    def _join_collective(self, rank: int, st: _RankState, op: _Collective,
                         unblocked: List[int]) -> Tuple[bool, Any]:
        index = st.coll_count
        coll = self._collectives.get(index)
        if coll is None:
            coll = self._collectives[index] = _CollState(self.num_ranks)
            coll.op = op.op
            coll.size = op.size
        if op.kind == "bcast":
            if rank == op.root:
                coll.value = op.value
        else:
            coll.value = combine(op.op, coll.value, op.value)
        coll.call_times[rank] = st.clock
        coll.arrived += 1
        st.coll_count += 1
        if coll.arrived < self.num_ranks:
            return False, None

        del self._collectives[index]
        if op.kind == "bcast":
            result = self._finish_bcast(op, coll)
        else:
            # allreduce, barrier, and reduce all trace as one synchronizing
            # unit: the paper notes MPI collectives "are represented as
            # single calls" with none of the internal dependencies recorded,
            # and the ring matching reproduces exactly that single-phase,
            # two-step abstraction.
            result = self._finish_symmetric(op, coll)

        # Resume every other participant (the caller resumes via return).
        for r in range(self.num_ranks):
            if r != rank and isinstance(self._ranks[r].blocked, _Collective):
                self._ranks[r].blocked = None
                value = result if op.kind != "reduce" or r == op.root else None
                self._resume_with(r, value, unblocked)
        if op.kind == "reduce" and rank != op.root:
            return True, None
        return True, result

    def _coll_hop(self, size: float) -> Tuple[int, float]:
        depth = max(1, math.ceil(math.log2(self.num_ranks)))
        hop = self.latency.latency(0, min(1, self.num_ranks - 1), size)
        return depth, hop

    def _finish_symmetric(self, op: _Collective, coll: _CollState) -> Any:
        """Allreduce/barrier: every rank sends and receives; ring matching
        merges all participants into one phase spanning two logical steps
        (the paper's rendering of MPI allreduce)."""
        entry_name = {
            "allreduce": "MPI_Allreduce",
            "barrier": "MPI_Barrier",
            "reduce": "MPI_Reduce",
        }[op.kind]
        depth, hop = self._coll_hop(op.size)
        complete = max(coll.call_times) + depth * hop
        send_events = []
        for r in range(self.num_ranks):
            send_events.append(self.builder.add_event(
                EventKind.SEND, self._ranks[r].chare_id, r, coll.call_times[r]
            ))
        for r in range(self.num_ranks):
            rst = self._ranks[r]
            call = coll.call_times[r]
            if complete > call:
                self.builder.add_idle(r, call, complete)
            end = complete + self.call_overhead
            exec_id = self.builder.add_execution(
                rst.chare_id, self._entry(entry_name), r, call, end
            )
            self.builder.set_event_execution(send_events[r], exec_id)
            recv_ev = self.builder.add_event(
                EventKind.RECV, rst.chare_id, r, complete, exec_id
            )
            self.builder.set_execution_recv(exec_id, recv_ev)
            self.builder.add_message(
                send_event=send_events[(r - 1) % self.num_ranks],
                recv_event=recv_ev,
            )
            rst.clock = end
        return coll.value

    def _finish_bcast(self, op: _Collective, coll: _CollState) -> Any:
        """Rooted broadcast: one send event at the root fans out."""
        depth, hop = self._coll_hop(op.size)
        root = op.root
        root_state = self._ranks[root]
        root_call = coll.call_times[root]
        root_end = root_call + self.call_overhead
        root_exec = self.builder.add_execution(
            root_state.chare_id, self._entry("MPI_Bcast"), root,
            root_call, root_end
        )
        send_ev = self.builder.add_event(
            EventKind.SEND, root_state.chare_id, root, root_call, root_exec
        )
        root_state.clock = root_end
        for r in range(self.num_ranks):
            if r == root:
                continue
            rst = self._ranks[r]
            call = coll.call_times[r]
            arrival = root_call + depth * hop
            complete = max(call, arrival)
            if complete > call:
                self.builder.add_idle(r, call, complete)
            end = complete + self.call_overhead
            exec_id = self.builder.add_execution(
                rst.chare_id, self._entry("MPI_Bcast"), r, call, end
            )
            recv_ev = self.builder.add_event(
                EventKind.RECV, rst.chare_id, r, complete, exec_id
            )
            self.builder.add_message(send_event=send_ev, recv_event=recv_ev)
            self.builder.set_execution_recv(exec_id, recv_ev)
            rst.clock = end
        return coll.value

    # ------------------------------------------------------------------
    def finish(self) -> Trace:
        """Build the trace."""
        return self.builder.build()
