"""Process-centric message-passing (MPI-style) simulator.

Ranks are Python generators yielding communication operations; the engine
matches sends to receives (non-overtaking, per (src, dst, tag) order) and
advances per-rank virtual clocks.  Tracing follows the Score-P convention
the paper relied on: every MPI call is one traced region containing a
single dependency event, and collective internals are *not* recorded —
each rank's collective call is abstracted into one send/recv pair matched
ring-wise across the participants, which the analysis's cycle merge
collapses into a single phase spanning two logical steps (matching the
paper's rendering of MPI allreduce, Section 6.2).
"""

from repro.sim.mpi.runtime import MpiSimulation, RankApi

__all__ = ["MpiSimulation", "RankApi"]
