"""Message latency models.

The paper's experiments ran over InfiniBand; what matters to the analysis
is that message travel times vary enough to scramble the physical delivery
order (Section 3.2.1: physical order "is the result of non-deterministic
factors, affected by imbalance in computation, travel time over the
network, and queuing policy of the runtime").  These models supply that
variation deterministically from a seed.

All latencies are in the simulator's abstract time unit; the application
models in :mod:`repro.apps` treat one unit as one microsecond.
"""

from __future__ import annotations

import random
from typing import Protocol


class LatencyModel(Protocol):
    """Computes the travel time of one message."""

    def latency(self, src_pe: int, dst_pe: int, size: float) -> float:
        """Return the delay between send call and delivery availability."""
        ...


class ConstantLatency:
    """Fixed base latency plus linear bandwidth term.

    ``local`` is used when ``src_pe == dst_pe`` (in-memory delivery through
    the scheduler queue).
    """

    def __init__(self, base: float = 2.0, per_byte: float = 0.001, local: float = 0.2):
        if base < 0 or per_byte < 0 or local < 0:
            raise ValueError("latency parameters must be non-negative")
        self.base = base
        self.per_byte = per_byte
        self.local = local

    def latency(self, src_pe: int, dst_pe: int, size: float) -> float:
        if src_pe == dst_pe:
            return self.local + self.per_byte * size * 0.1
        return self.base + self.per_byte * size


class UniformLatency:
    """Constant model perturbed by a uniform multiplicative factor.

    ``jitter=0.5`` means each message takes between 1x and 1.5x the base
    model's time.  Seeded, so reproducible.
    """

    def __init__(
        self,
        base: float = 2.0,
        per_byte: float = 0.001,
        local: float = 0.2,
        jitter: float = 0.5,
        seed: int = 0,
    ):
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        self._inner = ConstantLatency(base, per_byte, local)
        self.jitter = jitter
        self._rng = random.Random(seed)

    def latency(self, src_pe: int, dst_pe: int, size: float) -> float:
        return self._inner.latency(src_pe, dst_pe, size) * (
            1.0 + self._rng.random() * self.jitter
        )


class GammaLatency:
    """Heavy-tailed latency: base plus a gamma-distributed surcharge.

    Occasional slow messages are the classic cause of out-of-order
    delivery, the exact pathology reordering (Figure 10) compensates for.
    """

    def __init__(
        self,
        base: float = 2.0,
        per_byte: float = 0.001,
        local: float = 0.2,
        shape: float = 2.0,
        scale: float = 1.0,
        seed: int = 0,
    ):
        if shape <= 0 or scale < 0:
            raise ValueError("gamma shape must be > 0 and scale >= 0")
        self._inner = ConstantLatency(base, per_byte, local)
        self.shape = shape
        self.scale = scale
        self._rng = random.Random(seed)

    def latency(self, src_pe: int, dst_pe: int, size: float) -> float:
        extra = self._rng.gammavariate(self.shape, self.scale) if self.scale > 0 else 0.0
        return self._inner.latency(src_pe, dst_pe, size) + extra
