"""Reductions over chare arrays via per-PE ``CkReductionMgr`` chares.

Follows Section 5 of the paper: each element calls ``contribute``; the
contribution travels as a *process-local* message to the reduction manager
chare on its PE; once a manager has gathered all local contributions and
all partials from its children in a spanning tree over the participating
PEs, it forwards a partial to its parent (an explicit inter-processor
message, always traced); the root delivers the result to the client —
either a broadcast to the array or a point send (e.g. to the main chare).

Whether the *local* legs are traced is governed by
:attr:`~repro.sim.charm.tracing.TracingOptions.trace_reductions`; the
inter-PE tree messages are traced regardless, matching stock Charm++.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.sim.charm.chare import Chare, EntrySpec


@dataclass
class ReduceMsg:
    """Payload of reduction control messages."""

    array_id: int
    seq: int
    value: Any
    op: str
    target: Any
    size: float = 8.0


def combine(op: str, a: Any, b: Any) -> Any:
    """Combine two reduction partials under ``op``."""
    if a is None:
        return b
    if b is None:
        return a
    if op == "sum":
        return a + b
    if op == "max":
        return max(a, b)
    if op == "min":
        return min(a, b)
    if op == "nop":
        return None
    raise ValueError(f"unknown reduction op {op!r}")


def contribute(runtime: Any, ctx: Any, array: Any, seq: int, value: Any,
               op: str, target: Any, size: float) -> None:
    """Route one element's contribution to its PE's reduction manager."""
    mgrs = runtime.reduction_managers()
    mgr = mgrs[ctx.pe]
    traced = runtime.tracer.options.trace_reductions
    msg = ReduceMsg(array.array_id, seq, value, op, target, size)
    ctx.send_one(mgr, "contribute_local", msg, size, traced)


class _RedState:
    __slots__ = ("value", "local_count", "child_count", "op", "target", "size")

    def __init__(self) -> None:
        self.value: Any = None
        self.local_count = 0
        self.child_count = 0
        self.op = "sum"
        self.target: Any = None
        self.size = 8.0


class ReductionManager(Chare):
    """The per-PE runtime chare that gathers and forwards contributions."""

    IS_RUNTIME = True

    #: Per-message bookkeeping cost inside the manager.
    LOCAL_COST = 0.3
    COMBINE_COST = 0.5

    ENTRIES: Dict[str, EntrySpec] = {}

    def init(self, **kwargs: Any) -> None:
        self._states: Dict[Tuple[int, int], _RedState] = {}

    # -- entry methods ---------------------------------------------------
    def contribute_local(self, msg: ReduceMsg) -> None:
        """Receive one local element's contribution."""
        self.compute(self.LOCAL_COST)
        st = self._accumulate(msg)
        st.local_count += 1
        self._check_ready(msg.array_id, msg.seq)

    def child_partial(self, msg: ReduceMsg) -> None:
        """Receive a combined partial from a child PE in the spanning tree."""
        self.compute(self.COMBINE_COST)
        st = self._accumulate(msg)
        st.child_count += 1
        self._check_ready(msg.array_id, msg.seq)

    # -- internals ---------------------------------------------------------
    def _accumulate(self, msg: ReduceMsg) -> _RedState:
        key = (msg.array_id, msg.seq)
        st = self._states.get(key)
        if st is None:
            st = self._states[key] = _RedState()
            st.op = msg.op
            st.target = msg.target
            st.size = msg.size
        st.value = combine(st.op, st.value, msg.value)
        return st

    def _tree(self, array_id: int) -> Tuple[List[int], int]:
        handle = self._array_handle(array_id)
        pes = handle.participating_pes
        return pes, pes.index(self.pe)

    def _array_handle(self, array_id: int) -> Any:
        if array_id < 0:
            return self.runtime._sections[array_id]
        for handle in self.runtime._arrays:
            if handle.array_id == array_id:
                return handle
        raise KeyError(f"no array with id {array_id}")

    def _check_ready(self, array_id: int, seq: int) -> None:
        key = (array_id, seq)
        st = self._states[key]
        handle = self._array_handle(array_id)
        expected_local = handle.elements_per_pe.get(self.pe, 0)
        pes, pos = self._tree(array_id)
        n_children = sum(1 for c in (2 * pos + 1, 2 * pos + 2) if c < len(pes))
        if st.local_count < expected_local or st.child_count < n_children:
            return
        del self._states[key]
        if pos > 0:
            parent_pe = pes[(pos - 1) // 2]
            parent = self.runtime.reduction_managers()[parent_pe]
            fwd = ReduceMsg(array_id, seq, st.value, st.op, st.target, st.size)
            # Inter-processor reduction messages are explicit and always traced.
            self.send(parent, "child_partial", fwd, size=st.size, traced=True)
        else:
            self._deliver(handle, st)

    def _deliver(self, handle: Any, st: _RedState) -> None:
        target = st.target
        if target is None:
            return
        kind = target[0]
        if kind == "broadcast":
            _, entry = target
            self.runtime._broadcast(
                self._ctx(), list(handle.elements.values()), entry, st.value, st.size
            )
        elif kind == "send":
            _, client, entry = target
            self.send(client, entry, st.value, size=st.size, traced=True)
        else:
            raise ValueError(f"unknown reduction target {target!r}")
