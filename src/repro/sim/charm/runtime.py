"""The simulated Charm++ runtime: PE scheduling, messaging, arrays.

Execution model (Section 2.1 of the paper): each PE owns a queue of
delivered messages; when the PE is free, the runtime dequeues the earliest
arrival and runs the corresponding entry method to completion.  Sends made
during a block are stamped at the block's internal clock and delivered
after a network-model latency.  SDAG serial blocks chained with
:meth:`~repro.sim.charm.chare.Chare.chain` run immediately after their
trigger on the same PE, with no traced invocation.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Type

from repro.sim.charm.chare import Chare
from repro.sim.charm.tracing import CharmTracer, TracingOptions
from repro.sim.engine import Simulator
from repro.sim.network import ConstantLatency, LatencyModel
from repro.sim.noise import NoiseModel, NoNoise
from repro.trace.events import NO_ID
from repro.trace.model import Trace


@dataclass
class Envelope:
    """A message in flight (or queued) toward a chare's entry method."""

    dest: Chare
    entry: str
    payload: Any
    size: float
    message_id: int  # trace message id, NO_ID when untraced
    #: Queue priority: lower values dequeue first (Charm++ convention).
    priority: int = 0
    #: Whether the message participates in quiescence-detection counting
    #: (QD's own control messages must not, or totals never stabilize).
    counted: bool = True


class _PEState:
    __slots__ = ("queue", "busy", "idle_since", "seq")

    def __init__(self) -> None:
        self.queue: List[Tuple[float, int, Envelope]] = []
        self.busy = False
        self.idle_since: Optional[float] = 0.0  # PEs start idle at t=0
        self.seq = itertools.count()


class ExecutionContext:
    """State of the currently running serial block."""

    def __init__(self, runtime: "CharmRuntime", chare: Chare, pe: int,
                 start: float, exec_id: int):
        self.runtime = runtime
        self.chare = chare
        self.pe = pe
        self.clock = start
        self.exec_id = exec_id
        self.chained: List[Tuple[str, Any]] = []

    def compute(self, cost: float) -> None:
        if cost < 0:
            raise ValueError(f"negative compute cost {cost}")
        actual = self.runtime.noise.perturb(self.pe, self.chare.trace_id, cost)
        self.clock += actual
        # Measured load feeds the load balancer (Charm++ LB database).
        loads = self.runtime.chare_load
        loads[self.chare.trace_id] = loads.get(self.chare.trace_id, 0.0) + actual

    def send_one(self, target: Chare, entry: str, payload: Any,
                 size: float, traced: bool, priority: int = 0,
                 counted: bool = True) -> None:
        self.runtime._send_one(self, target, entry, payload, size, traced,
                               priority, counted)

    def chain(self, entry: str, payload: Any) -> None:
        self.chained.append((entry, payload))


class ArrayHandle:
    """A chare array: indexed elements plus broadcast/reduction metadata."""

    def __init__(self, runtime: "CharmRuntime", array_id: int, name: str,
                 shape: Tuple[int, ...]):
        self.runtime = runtime
        self.array_id = array_id
        self.name = name
        self.shape = shape
        self.elements: Dict[Tuple[int, ...], Chare] = {}
        #: Number of elements per PE, filled as elements are created.
        self.elements_per_pe: Dict[int, int] = {}

    def __getitem__(self, index) -> Chare:
        if not isinstance(index, tuple):
            index = (index,)
        return self.elements[index]

    def __iter__(self):
        return iter(self.elements.values())

    def __len__(self) -> int:
        return len(self.elements)

    @property
    def participating_pes(self) -> List[int]:
        """Sorted PEs hosting at least one element (reduction-tree nodes)."""
        return sorted(self.elements_per_pe)

    def broadcast_from(self, sender_ctx: ExecutionContext, entry: str,
                       payload: Any = None, size: float = 8.0) -> None:
        """Broadcast ``entry`` to every element (one send event, N messages)."""
        self.runtime._broadcast(sender_ctx, list(self.elements.values()), entry,
                                payload, size)

    def section(self, indices) -> "SectionHandle":
        """Create a section (subset proxy) over the given element indices.

        Sections support multicast and section reductions; see
        :mod:`repro.sim.charm.sections`.
        """
        from repro.sim.charm.sections import SectionHandle

        section_id = self.runtime._new_section_id()
        handle = SectionHandle(self, indices, section_id)
        self.runtime._sections[section_id] = handle
        return handle


class ChareHandle:
    """Wrapper for a singleton chare (e.g. the main chare)."""

    def __init__(self, chare: Chare):
        self.chare = chare


class CharmRuntime:
    """Top-level simulator facade.

    Typical use::

        rt = CharmRuntime(num_pes=8, seed=1)
        arr = rt.create_array("Jacobi", JacobiChare, shape=(8, 8), block=...)
        main = rt.create_chare("Main", MainChare, pe=0, array=arr)
        rt.seed(main.chare, "start")
        rt.run()
        trace = rt.finish()
    """

    def __init__(
        self,
        num_pes: int,
        latency: Optional[LatencyModel] = None,
        noise: Optional[NoiseModel] = None,
        tracing: Optional[TracingOptions] = None,
        task_overhead: float = 0.5,
        sched_gap: float = 0.05,
        metadata: Optional[Dict[str, object]] = None,
    ):
        if num_pes <= 0:
            raise ValueError("num_pes must be positive")
        if sched_gap <= 0:
            raise ValueError(
                "sched_gap must be positive: back-to-back queue pops with "
                "zero gap are indistinguishable from chained SDAG serials"
            )
        self.num_pes = num_pes
        self.sim = Simulator()
        self.latency: LatencyModel = latency or ConstantLatency()
        self.noise: NoiseModel = noise or NoNoise()
        self.tracer = CharmTracer(num_pes, tracing, metadata)
        self.task_overhead = task_overhead
        self.sched_gap = sched_gap
        self.current: Optional[ExecutionContext] = None
        self._pes = [_PEState() for _ in range(num_pes)]
        self._chares: List[Chare] = []
        self._arrays: List[ArrayHandle] = []
        # Reduction managers: one runtime chare per PE (created lazily so
        # traces of reduction-free apps contain no runtime chares).
        self._reduction_mgrs: Optional[List[Chare]] = None
        #: Accumulated measured compute per chare (the LB database).
        self.chare_load: Dict[int, float] = {}
        self._load_balancer: Optional[Chare] = None
        self._balance_strategy = None
        self.migrations = 0
        #: Per-PE message counters feeding quiescence detection.
        self.messages_created = [0] * num_pes
        self.messages_processed = [0] * num_pes
        self._qd_managers: Optional[List[Chare]] = None
        #: Array sections, keyed by their synthetic (negative) ids.
        self._sections: Dict[int, Any] = {}

    # ------------------------------------------------------------------
    # Object creation
    # ------------------------------------------------------------------
    def create_array(
        self,
        name: str,
        cls: Type[Chare],
        shape: Tuple[int, ...],
        mapping: str = "block",
        **init_kwargs: Any,
    ) -> ArrayHandle:
        """Create a chare array of ``cls`` with one element per index.

        ``mapping`` assigns elements to PEs: ``"block"`` (contiguous runs of
        the linearized index space), ``"round_robin"``, ``"hashed"``
        (deterministic scatter, like Charm++'s default array map; per-PE
        counts may differ by a few), or ``"shuffle"`` (deterministic
        scatter with exactly balanced per-PE counts).
        """
        if not isinstance(shape, tuple):
            shape = (shape,)
        array_id = self.tracer.register_array(name, shape)
        handle = ArrayHandle(self, array_id, name, shape)
        indices = list(_iter_indices(shape))
        count = len(indices)
        if mapping == "shuffle":
            import random as _random

            order = list(range(count))
            _random.Random(0xC4A12).shuffle(order)
            shuffle_pe = [0] * count
            for position, linear in enumerate(order):
                shuffle_pe[linear] = position % self.num_pes
        for linear, index in enumerate(indices):
            if mapping == "block":
                pe = linear * self.num_pes // count
            elif mapping == "round_robin":
                pe = linear % self.num_pes
            elif mapping == "hashed":
                pe = ((linear * 2654435761) >> 8) % self.num_pes
            elif mapping == "shuffle":
                pe = shuffle_pe[linear]
            else:
                raise ValueError(f"unknown mapping {mapping!r}")
            label = f"{name}{list(index)}"
            trace_id = self.tracer.register_chare(
                label, array_id=array_id, index=index,
                is_runtime=cls.IS_RUNTIME, home_pe=pe,
            )
            chare = cls(self, trace_id, pe, index=index, array=handle)
            chare.init(**init_kwargs)
            self._register(chare)
            handle.elements[index] = chare
            handle.elements_per_pe[pe] = handle.elements_per_pe.get(pe, 0) + 1
        self._arrays.append(handle)
        return handle

    def create_chare(self, name: str, cls: Type[Chare], pe: int = 0,
                     **init_kwargs: Any) -> ChareHandle:
        """Create a singleton chare pinned to ``pe``."""
        trace_id = self.tracer.register_chare(
            name, is_runtime=cls.IS_RUNTIME, home_pe=pe
        )
        chare = cls(self, trace_id, pe)
        chare.init(**init_kwargs)
        self._register(chare)
        return ChareHandle(chare)

    def _register(self, chare: Chare) -> None:
        self._chares.append(chare)

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def seed(self, target: Chare, entry: str, payload: Any = None,
             at: float = 0.0, counted: bool = True) -> None:
        """Inject a start-up message (untraced, like program launch)."""
        env = Envelope(target, entry, payload, 0.0, NO_ID, counted=counted)
        if counted:
            self.messages_created[target.pe] += 1
        self.sim.schedule(at, lambda env=env: self._on_arrival(env))

    def _send_one(self, ctx: ExecutionContext, target: Chare, entry: str,
                  payload: Any, size: float, traced: bool,
                  priority: int = 0, counted: bool = True) -> None:
        message_id = NO_ID
        if traced and self.tracer.options.enabled:
            send_ev = self.tracer.record_send(ctx.chare.trace_id, ctx.pe,
                                              ctx.clock, ctx.exec_id)
            message_id = self.tracer.record_message(send_ev)
        if counted:
            self.messages_created[ctx.pe] += 1
        delay = self.latency.latency(ctx.pe, target.pe, size)
        env = Envelope(target, entry, payload, size, message_id, priority,
                       counted)
        self.sim.schedule(ctx.clock + delay, lambda env=env: self._on_arrival(env))

    def _broadcast(self, ctx: ExecutionContext, targets: Sequence[Chare],
                   entry: str, payload: Any, size: float) -> None:
        send_ev = NO_ID
        if self.tracer.options.enabled:
            send_ev = self.tracer.record_send(ctx.chare.trace_id, ctx.pe,
                                              ctx.clock, ctx.exec_id)
        for target in targets:
            message_id = NO_ID
            if send_ev != NO_ID:
                message_id = self.tracer.record_message(send_ev)
            self.messages_created[ctx.pe] += 1
            delay = self.latency.latency(ctx.pe, target.pe, size)
            env = Envelope(target, entry, payload, size, message_id)
            self.sim.schedule(ctx.clock + delay, lambda env=env: self._on_arrival(env))

    # ------------------------------------------------------------------
    # Reductions (delegated to repro.sim.charm.reduction)
    # ------------------------------------------------------------------
    def _contribute(self, ctx: ExecutionContext, array: ArrayHandle, seq: int,
                    value: Any, op: str, target: Any, size: float) -> None:
        from repro.sim.charm.reduction import contribute as _contribute_impl

        _contribute_impl(self, ctx, array, seq, value, op, target, size)

    def _new_section_id(self) -> int:
        # Negative ids keep sections disjoint from real array ids in the
        # reduction managers' state keys.
        return -(len(self._sections) + 1)

    def _contribute_section(self, ctx: ExecutionContext, section, seq: int,
                            value: Any, op: str, target: Any,
                            size: float) -> None:
        from repro.sim.charm.reduction import contribute as _contribute_impl

        _contribute_impl(self, ctx, section, seq, value, op, target, size)

    def reduction_managers(self) -> List[Chare]:
        """The per-PE ``CkReductionMgr`` runtime chares (created on demand)."""
        if self._reduction_mgrs is None:
            from repro.sim.charm.reduction import ReductionManager

            mgrs = []
            for pe in range(self.num_pes):
                trace_id = self.tracer.register_chare(
                    f"CkReductionMgr[{pe}]", is_runtime=True, home_pe=pe
                )
                mgr = ReductionManager(self, trace_id, pe)
                mgr.init()
                self._register(mgr)
                mgrs.append(mgr)
            self._reduction_mgrs = mgrs
        return self._reduction_mgrs

    # ------------------------------------------------------------------
    # Load balancing (delegated to repro.sim.charm.loadbalance)
    # ------------------------------------------------------------------
    def set_balance_strategy(self, strategy) -> None:
        """Choose the LB strategy before the first AtSync point."""
        if self._load_balancer is not None:
            raise RuntimeError("load balancer already created")
        self._balance_strategy = strategy

    def load_balancer(self) -> Chare:
        """The central ``CkLoadBalancer`` runtime chare (created on demand)."""
        if self._load_balancer is None:
            from repro.sim.charm.loadbalance import LoadBalancerChare

            trace_id = self.tracer.register_chare(
                "CkLoadBalancer", is_runtime=True, home_pe=0
            )
            lb = LoadBalancerChare(self, trace_id, 0)
            lb.init(strategy=self._balance_strategy)
            self._register(lb)
            self._load_balancer = lb
        return self._load_balancer

    def _at_sync(self, ctx: ExecutionContext, chare: Chare) -> None:
        load = self.chare_load.pop(chare.trace_id, 0.0)
        payload = (chare, load, chare.array.array_id, len(chare.array))
        ctx.send_one(self.load_balancer(), "sync", payload, 16.0, True)

    def _migrate(self, chare: Chare, new_pe: int) -> None:
        """Move a quiescent chare to another PE (LB sync points only)."""
        old_pe = chare.pe
        if old_pe == new_pe:
            return
        chare.pe = new_pe
        if chare.array is not None:
            per_pe = chare.array.elements_per_pe
            per_pe[old_pe] -= 1
            if per_pe[old_pe] == 0:
                del per_pe[old_pe]
            per_pe[new_pe] = per_pe.get(new_pe, 0) + 1
        self.migrations += 1

    def start_quiescence_detection(self, client: Optional[Chare],
                                   client_entry: str = "",
                                   at: float = 0.0) -> List[Chare]:
        """Arm quiescence detection (Charm++ ``CkStartQD`` analogue).

        Creates one ``CkQdMgr`` runtime chare per PE and starts polling at
        time ``at``; when two consecutive waves observe identical balanced
        message counters, ``client_entry`` is invoked on ``client``.
        """
        from repro.sim.charm.quiescence import QdManager

        if self._qd_managers is not None:
            raise RuntimeError("quiescence detection already started")
        managers: List[Chare] = []
        for pe in range(self.num_pes):
            trace_id = self.tracer.register_chare(
                f"CkQdMgr[{pe}]", is_runtime=True, home_pe=pe
            )
            mgr = QdManager(self, trace_id, pe)
            self._register(mgr)
            managers.append(mgr)
        for mgr in managers:
            mgr.init(managers=managers, client=client, client_entry=client_entry)
        self._qd_managers = managers
        self.seed(managers[0], "start_wave", at=at, counted=False)
        return managers

    # ------------------------------------------------------------------
    # PE scheduling
    # ------------------------------------------------------------------
    def _on_arrival(self, env: Envelope) -> None:
        pe = env.dest.pe
        state = self._pes[pe]
        # The scheduler dequeues by priority, then arrival order — the
        # "queuing policy of the runtime" the paper lists among the
        # non-deterministic factors reordering compensates for.
        heapq.heappush(state.queue,
                       ((env.priority, self.sim.now, next(state.seq)), 0, env))
        if not state.busy:
            self._begin_block(pe)

    def _begin_block(self, pe: int) -> None:
        state = self._pes[pe]
        _arrival, _seq, env = heapq.heappop(state.queue)
        now = self.sim.now
        if env.dest.pe != pe:
            # The chare migrated after this message was enqueued: forward
            # it to the new home (Charm++ message forwarding).
            delay = self.latency.latency(pe, env.dest.pe, env.size)
            self.sim.schedule(now + delay, lambda env=env: self._on_arrival(env))
            if state.queue:
                state.busy = True
                self.sim.schedule(now + self.sched_gap,
                                  lambda pe=pe: self._begin_block(pe))
            else:
                state.busy = False
                if state.idle_since is None:
                    state.idle_since = now
            return
        if state.idle_since is not None and now > state.idle_since:
            self.tracer.record_idle(pe, state.idle_since, now)
        state.idle_since = None
        state.busy = True
        if env.counted:
            self.messages_processed[pe] += 1
        end = self._run_block(pe, env.dest, env.entry, env.payload, now,
                              env.message_id)
        self.sim.schedule(end, lambda pe=pe: self._finish_block(pe))

    def _run_block(self, pe: int, chare: Chare, entry: str, payload: Any,
                   start: float, message_id: int) -> float:
        """Execute one serial block plus any chained serials; returns end."""
        spec = type(chare).entry_spec(entry)
        entry_id = self.tracer.register_entry(
            type(chare).__name__, entry,
            is_sdag_serial=spec.is_sdag_serial, sdag_ordinal=spec.sdag_ordinal,
        )
        exec_id = self.tracer.begin_execution(chare.trace_id, entry_id, pe, start)
        ctx = ExecutionContext(self, chare, pe, start, exec_id)
        if message_id != NO_ID:
            self.tracer.record_recv(chare.trace_id, pe, start, exec_id, message_id)
        prev = self.current
        self.current = ctx
        try:
            getattr(chare, entry)(payload)
        finally:
            self.current = prev
        end = ctx.clock + self.task_overhead
        self.tracer.end_execution(exec_id, end)
        t = end
        for chained_entry, chained_payload in ctx.chained:
            t = self._run_block(pe, chare, chained_entry, chained_payload, t, NO_ID)
        return t

    def _finish_block(self, pe: int) -> None:
        state = self._pes[pe]
        if state.queue:
            # Keep the PE marked busy across the scheduler gap; the gap
            # separates distinct queue pops in time so that only runtime-
            # chained SDAG serials are truly gap-free (absorption relies
            # on this distinction).
            self.sim.schedule(self.sim.now + self.sched_gap,
                              lambda pe=pe: self._begin_block(pe))
        else:
            state.busy = False
            state.idle_since = self.sim.now

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> None:
        """Run the simulation to quiescence (or to time ``until``)."""
        self.sim.run(until=until)

    def finish(self) -> Trace:
        """Build the trace.  Trailing idle intervals are dropped — they have
        no following event and carry no analytical information."""
        return self.tracer.build()


def _iter_indices(shape: Tuple[int, ...]):
    if len(shape) == 1:
        for i in range(shape[0]):
            yield (i,)
    else:
        for i in range(shape[0]):
            for rest in _iter_indices(shape[1:]):
                yield (i,) + rest
