"""A message-driven chare runtime simulator in the style of Charm++.

Implements the execution semantics the paper depends on (Section 2.1):

* chares and indexed chare arrays, mapped to PEs;
* entry methods scheduled by per-PE message queues, run to completion;
* broadcasts over arrays;
* reductions through per-PE ``CkReductionMgr`` runtime chares that gather
  local contributions and combine partials up a spanning tree of PEs;
* SDAG-style serial sections chained after ``when`` triggers (the chaining
  control flow is runtime-internal and *not* traced, which is exactly the
  missing-dependency situation the analysis heuristics recover);
* a tracing module recording entry begin/end, messaging events, and idle
  intervals, with the Section 5 extension (process-local reduction events)
  switchable on and off.
"""

from repro.sim.charm.chare import Chare, EntrySpec
from repro.sim.charm.loadbalance import (
    GreedyBalancer,
    NullBalancer,
    RefineBalancer,
)
from repro.sim.charm.runtime import ArrayHandle, ChareHandle, CharmRuntime
from repro.sim.charm.sdag import WhenCounter
from repro.sim.charm.tracing import TracingOptions

__all__ = [
    "Chare",
    "EntrySpec",
    "CharmRuntime",
    "ArrayHandle",
    "ChareHandle",
    "WhenCounter",
    "TracingOptions",
    "GreedyBalancer",
    "NullBalancer",
    "RefineBalancer",
]
