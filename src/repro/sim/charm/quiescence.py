"""Quiescence detection (the Charm++ ``CkStartQD`` analogue).

Quiescence holds when every sent message has been processed and no PE is
executing.  The detector uses the classic two-wave counting scheme: a
per-PE ``CkQdMgr`` runtime chare reports its (created, processed) counters
up a spanning tree; the root compares the global sums across two
consecutive waves — equal and unchanged means no message can still be in
flight — and then notifies the client chare.

The detector's tree messages are explicit inter-PE messages and are traced
(like the reduction tree), so QD shows up in the recovered logical
structure as repeated runtime phases polling alongside the application —
a good stress case for the app/runtime phase separation.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.sim.charm.chare import Chare


class QdManager(Chare):
    """Per-PE quiescence-detection manager."""

    IS_RUNTIME = True

    POLL_COST = 0.3
    #: Delay between the end of a failed wave and the next poll.
    REPOLL_DELAY = 25.0

    def init(self, managers=None, client=None, client_entry: str = "",
             **_ignored) -> None:
        self.managers = managers
        self.client = client
        self.client_entry = client_entry
        self._reports: Dict[int, Tuple[int, int]] = {}
        self._expected = 0
        self._last_totals: Optional[Tuple[int, int]] = None
        self._done = False

    # -- root side ---------------------------------------------------------
    def _send_uncounted(self, target: Chare, entry: str, payload=None,
                        size: float = 8.0) -> None:
        """QD control messages are traced but excluded from the counters
        (counting them would grow the totals every wave, so two waves
        could never match)."""
        self._ctx().send_one(target, entry, payload, size, True,
                             priority=0, counted=False)

    def start_wave(self, _msg) -> None:
        """Root: ask every manager (self included) for its counters."""
        if self._done:
            return
        self.compute(self.POLL_COST)
        self._reports = {}
        self._expected = len(self.managers)
        for mgr in self.managers:
            self._send_uncounted(mgr, "poll")

    def report(self, payload) -> None:
        """Root: accumulate one PE's counter report."""
        pe, created, processed = payload
        self.compute(self.POLL_COST)
        self._reports[pe] = (created, processed)
        if len(self._reports) < self._expected or self._done:
            return
        created = sum(c for c, _ in self._reports.values())
        processed = sum(p for _, p in self._reports.values())
        totals = (created, processed)
        if created == processed and totals == self._last_totals:
            # Two identical balanced waves: the system is quiescent.
            self._done = True
            if self.client is not None:
                self._send_uncounted(self.client, self.client_entry)
            return
        self._last_totals = totals
        # Not yet quiet: another wave after a delay (an untraced internal
        # self-wakeup, like a scheduler timer — excluded from the counters,
        # or the totals would grow each wave and never stabilize).
        self.runtime.seed(self, "start_wave",
                          at=self.runtime.sim.now + self.REPOLL_DELAY,
                          counted=False)

    # -- per-PE side --------------------------------------------------------
    def poll(self, _msg) -> None:
        """Any manager: report this PE's counters to the root."""
        self.compute(self.POLL_COST)
        created = self.runtime.messages_created[self.pe]
        processed = self.runtime.messages_processed[self.pe]
        self._send_uncounted(self.managers[0], "report",
                             (self.pe, created, processed), size=16.0)
