"""Array sections: multicast and reduction over a subset of an array.

Charm++ lets applications carve *sections* out of a chare array (e.g. one
row of a 2D decomposition) and treat them like small arrays: a multicast
delivers one logical send to every member, and a section reduction gathers
contributions from exactly the members.  Sections matter to trace analysis
because their collectives create phases spanning a *subset* of the chares —
the DAG properties must hold per chare, not per array.

Section reductions reuse the per-PE :class:`~repro.sim.charm.reduction.
ReductionManager` machinery with a section-scoped participant count.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from repro.sim.charm.chare import Chare


class SectionHandle:
    """A named subset of a chare array."""

    def __init__(self, array, indices: Sequence[Tuple[int, ...]],
                 section_id: int):
        self.array = array
        self.runtime = array.runtime
        self.section_id = section_id
        self.members: List[Chare] = []
        seen = set()
        for index in indices:
            if not isinstance(index, tuple):
                index = (index,)
            if index in seen:
                raise ValueError(f"duplicate section member {index}")
            seen.add(index)
            self.members.append(array[index])
        if not self.members:
            raise ValueError("a section needs at least one member")
        #: Members per PE (the section reduction's expected local counts).
        self.members_per_pe: Dict[int, int] = {}
        self._recount()
        self._reduction_seq: Dict[int, int] = {}

    def _recount(self) -> None:
        self.members_per_pe = {}
        for member in self.members:
            self.members_per_pe[member.pe] = (
                self.members_per_pe.get(member.pe, 0) + 1
            )

    def __len__(self) -> int:
        return len(self.members)

    def __iter__(self):
        return iter(self.members)

    def __contains__(self, chare: Chare) -> bool:
        return chare in self.members

    @property
    def participating_pes(self) -> List[int]:
        """Sorted PEs hosting members (recomputed: members can migrate)."""
        self._recount()
        return sorted(self.members_per_pe)

    @property
    def elements_per_pe(self) -> Dict[int, int]:
        # Duck-typed like ArrayHandle so ReductionManager can use either.
        self._recount()
        return self.members_per_pe

    @property
    def elements(self) -> Dict[Tuple[int, ...], Chare]:
        return {m.index: m for m in self.members}

    @property
    def array_id(self) -> int:
        # Section reductions key manager state by a synthetic id distinct
        # from any real array (and any other section).
        return self.section_id

    # ------------------------------------------------------------------
    def multicast_from(self, sender_ctx, entry: str, payload: Any = None,
                       size: float = 8.0) -> None:
        """Deliver ``entry`` to every member (one send event, N messages)."""
        self.runtime._broadcast(sender_ctx, list(self.members), entry,
                                payload, size)

    def contribute(self, chare: Chare, value: Any, op: str, target: Any,
                   size: float = 8.0) -> None:
        """Section reduction: ``chare`` (a member) contributes ``value``.

        ``target`` follows the array-reduction convention:
        ``("broadcast", entry)`` multicasts the result to the section,
        ``("send", chare, entry)`` delivers it to a single client.
        """
        if chare not in self.members:
            raise ValueError(
                f"{chare!r} is not a member of this section"
            )
        ctx = chare._ctx()
        # Sequence numbers are per member: every member contributes once
        # per reduction round, so its own count identifies the round.
        seq = self._reduction_seq.get(chare.trace_id, 0)
        self._reduction_seq[chare.trace_id] = seq + 1
        self.runtime._contribute_section(ctx, self, seq, value, op, target,
                                         size)
