"""Measurement-based load balancing with chare migration.

The paper's future work calls for analyses that "show lifetime and
migration between processors"; this module adds the runtime side: chares
accumulate measured compute load, and at an AtSync point (every element of
an array calling :meth:`~repro.sim.charm.chare.Chare.at_sync`) a central
``CkLoadBalancer`` runtime chare collects the loads, computes a new
mapping with a pluggable strategy, migrates the chares, and resumes them
via ``resume_from_sync`` — all visible in the trace as a runtime phase
between the application phases, like a Charm++ LB step.

Migration is modelled as instantaneous at the sync point (all elements are
quiescent there); in-flight messages follow the chare to its new PE, as
Charm++'s message forwarding would arrange.
"""

from __future__ import annotations

from typing import Any, Dict, List, Protocol, Tuple

from repro.sim.charm.chare import Chare


class BalanceStrategy(Protocol):
    """Computes a new chare->PE mapping from measured loads."""

    def remap(self, loads: Dict[int, float], current: Dict[int, int],
              num_pes: int) -> Dict[int, int]:
        """Return the new PE for every chare id in ``loads``."""
        ...


class GreedyBalancer:
    """Classic greedy LB: heaviest chares first onto the lightest PE."""

    def remap(self, loads: Dict[int, float], current: Dict[int, int],
              num_pes: int) -> Dict[int, int]:
        pe_load = [0.0] * num_pes
        mapping: Dict[int, int] = {}
        for chare in sorted(loads, key=lambda c: -loads[c]):
            pe = min(range(num_pes), key=lambda p: pe_load[p])
            mapping[chare] = pe
            pe_load[pe] += loads[chare]
        return mapping


class NullBalancer:
    """Keeps the current mapping (baseline for LB ablations)."""

    def remap(self, loads: Dict[int, float], current: Dict[int, int],
              num_pes: int) -> Dict[int, int]:
        return dict(current)


class RefineBalancer:
    """Refinement LB (Charm++ ``RefineLB`` analogue): minimal migrations.

    Instead of remapping everything like :class:`GreedyBalancer`, chares
    move off overloaded PEs onto the least-loaded one only until every PE
    is within ``tolerance`` of the average — trading balance quality for
    migration cost, the classic refinement/greedy trade-off.
    """

    def __init__(self, tolerance: float = 1.05):
        if tolerance < 1.0:
            raise ValueError("tolerance must be >= 1.0")
        self.tolerance = tolerance

    def remap(self, loads: Dict[int, float], current: Dict[int, int],
              num_pes: int) -> Dict[int, int]:
        mapping = dict(current)
        pe_load = [0.0] * num_pes
        pe_chares: Dict[int, list] = {p: [] for p in range(num_pes)}
        for chare, pe in mapping.items():
            pe_load[pe] += loads[chare]
            pe_chares[pe].append(chare)
        average = sum(pe_load) / num_pes if num_pes else 0.0
        threshold = average * self.tolerance
        # Repeatedly move the lightest movable chare off the heaviest PE.
        for _ in range(len(mapping)):
            heavy = max(range(num_pes), key=lambda p: pe_load[p])
            if pe_load[heavy] <= threshold or not pe_chares[heavy]:
                break
            light = min(range(num_pes), key=lambda p: pe_load[p])
            candidates = sorted(pe_chares[heavy], key=lambda c: loads[c])
            moved = None
            for chare in candidates:
                if pe_load[light] + loads[chare] < pe_load[heavy]:
                    moved = chare
                    break
            if moved is None:
                break
            pe_chares[heavy].remove(moved)
            pe_chares[light].append(moved)
            pe_load[heavy] -= loads[moved]
            pe_load[light] += loads[moved]
            mapping[moved] = light
        return mapping


class LoadBalancerChare(Chare):
    """The central runtime chare orchestrating an LB step."""

    IS_RUNTIME = True

    #: Bookkeeping cost per received sync message and per migration.
    SYNC_COST = 0.4
    MIGRATE_COST = 1.0

    def init(self, strategy: Any = None, **_ignored) -> None:
        self.strategy = strategy or GreedyBalancer()
        self._waiting: Dict[int, List[Tuple[Chare, float]]] = {}

    def sync(self, payload) -> None:
        """One array element reached its AtSync point."""
        chare, load, array_id, expected = payload
        self.compute(self.SYNC_COST)
        bucket = self._waiting.setdefault(array_id, [])
        bucket.append((chare, load))
        if len(bucket) < expected:
            return
        del self._waiting[array_id]
        loads = {c.trace_id: l for c, l in bucket}
        current = {c.trace_id: c.pe for c, _ in bucket}
        mapping = self.strategy.remap(loads, current, self.runtime.num_pes)
        migrations = 0
        by_id = {c.trace_id: c for c, _ in bucket}
        for chare_id, new_pe in mapping.items():
            target = by_id[chare_id]
            if target.pe != new_pe:
                self.runtime._migrate(target, new_pe)
                migrations += 1
        self.compute(self.MIGRATE_COST * max(1, migrations))
        self.runtime.tracer.builder.metadata.setdefault("lb_steps", []).append(
            {"migrations": migrations, "time": self.now}
        )
        for chare, _load in bucket:
            # Resume is runtime-internal control flow: like the SDAG
            # chains, it is delivered but not traced as a message.
            self.send(chare, "resume_from_sync", None, size=8.0, traced=False)
