"""Chare base class and entry-method metadata.

Application code subclasses :class:`Chare`; each public method invoked via
a message is an *entry method*.  Metadata (SDAG serial flags and ordinals,
Section 2.1) is declared in the ``ENTRIES`` class attribute and lands in
the trace's entry-method registry, where the analysis's serial-numbering
heuristic reads it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple


@dataclass(frozen=True)
class EntrySpec:
    """Static metadata for one entry method.

    ``sdag_ordinal`` is the parsing-order number the Charm++ compiler gives
    generated ``serial`` entry methods; consecutive ordinals observed
    back-to-back on a chare let the analysis infer happened-before edges.
    """

    is_sdag_serial: bool = False
    sdag_ordinal: int = -1


class Chare:
    """Base class for simulated chares.

    Entry methods are ordinary Python methods; inside one, the helpers
    below advance the simulated clock and emit messages.  All helpers must
    be called only while the chare is executing (the runtime enforces it).
    """

    #: Per-class entry metadata; methods not listed get a default spec.
    ENTRIES: Dict[str, EntrySpec] = {}

    #: Runtime chares (reduction managers, completion detectors) override.
    IS_RUNTIME = False

    def __init__(self, runtime: Any, trace_id: int, pe: int,
                 index: Tuple[int, ...] = (), array: Optional[Any] = None):
        self.runtime = runtime
        self.trace_id = trace_id
        self.pe = pe
        self.index = index
        self.array = array
        self._reduction_seq: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def init(self, **kwargs: Any) -> None:
        """Hook called once at creation with the app's keyword arguments."""

    @classmethod
    def entry_spec(cls, name: str) -> EntrySpec:
        """Metadata for entry method ``name`` (default spec if undeclared)."""
        return cls.ENTRIES.get(name, EntrySpec())

    # -- helpers usable inside entry methods ----------------------------
    def _ctx(self):
        ctx = self.runtime.current
        if ctx is None or ctx.chare is not self:
            raise RuntimeError(
                f"{type(self).__name__}.{'_ctx'}: helper called outside an "
                "entry method of this chare"
            )
        return ctx

    @property
    def now(self) -> float:
        """Current simulated time inside the executing block."""
        return self._ctx().clock

    def compute(self, cost: float) -> None:
        """Burn ``cost`` time units of computation (noise model applied)."""
        self._ctx().compute(cost)

    def send(self, target: "Chare", entry: str, payload: Any = None,
             size: float = 8.0, traced: bool = True,
             priority: int = 0) -> None:
        """Invoke ``entry`` on ``target`` via a message.

        ``traced=False`` models control flow the tracing framework cannot
        record (e.g. the PDES completion-detector call of Figure 24): the
        message is delivered but leaves no send/recv records.

        ``priority`` orders the destination PE's scheduling queue (lower
        first, Charm++ convention): a source of execution-order
        non-determinism the logical structure untangles.
        """
        self._ctx().send_one(target, entry, payload, size, traced, priority)

    def contribute(self, value: Any, op: str, target: Any, size: float = 8.0) -> None:
        """Contribute to a reduction over this chare's array (Section 5).

        ``target`` is either ``("broadcast", entry_name)`` — deliver the
        result to every element of the array — or ``("send", chare, entry)``
        for a single client (typically the main chare).
        """
        if self.array is None:
            raise RuntimeError("contribute() requires the chare to belong to an array")
        ctx = self._ctx()
        seq = self._reduction_seq.get(self.array.array_id, 0)
        self._reduction_seq[self.array.array_id] = seq + 1
        self.runtime._contribute(ctx, self.array, seq, value, op, target, size)

    def at_sync(self) -> None:
        """Reach a load-balancing sync point (Charm++ ``AtSync``).

        When every element of this chare's array has called ``at_sync``,
        the runtime's load balancer redistributes the chares by measured
        load and delivers ``resume_from_sync`` to each element.  The chare
        must define a ``resume_from_sync`` entry method.
        """
        if self.array is None:
            raise RuntimeError("at_sync() requires the chare to belong to an array")
        self.runtime._at_sync(self._ctx(), self)

    def chain(self, entry: str, payload: Any = None) -> None:
        """Run ``entry`` as an SDAG serial block immediately after this one.

        The chained block executes on the same PE with no gap and *no traced
        invocation* — the control dependency lives inside the runtime, which
        is why the analysis needs the serial-ordinal heuristic to recover it.
        """
        self._ctx().chain(entry, payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(id={self.trace_id}, index={self.index}, pe={self.pe})"
