"""Structured Dagger (SDAG) helpers.

Real SDAG compiles ``when`` clauses into buffering state machines inside
generated entry methods.  :class:`WhenCounter` provides the same pattern
for simulated chares: deposit messages under a key (typically the iteration
number, mirroring SDAG reference numbers) and learn when the dependency
count is met — at which point the app chains its serial block.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List


class WhenCounter:
    """Buffers messages per key until an expected count is reached.

    Messages for a *future* key (e.g. a fast neighbour already sending
    ghost data for the next iteration) buffer independently, exactly like
    SDAG reference-number matching.
    """

    def __init__(self, expected: int):
        if expected <= 0:
            raise ValueError("expected count must be positive")
        self.expected = expected
        self._buffers: Dict[Hashable, List[Any]] = {}

    def deposit(self, key: Hashable, msg: Any = None) -> bool:
        """Add ``msg`` under ``key``; True when the count for ``key`` is met.

        The buffer for a completed key is discarded, so the same key can be
        reused (though apps normally advance the key each iteration).
        """
        buf = self._buffers.setdefault(key, [])
        buf.append(msg)
        if len(buf) >= self.expected:
            del self._buffers[key]
            return True
        return False

    def pending(self, key: Hashable) -> int:
        """Number of messages buffered so far under ``key``."""
        return len(self._buffers.get(key, ()))
