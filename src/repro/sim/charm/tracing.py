"""Tracing module for the Charm++ simulator.

Mirrors the native Charm++ tracing framework plus the paper's Section 5
additions.  The key switch is :attr:`TracingOptions.trace_reductions`:

* **True** (the paper's extension): the local ``contribute`` call from each
  application chare to its PE's reduction manager is recorded as a message,
  as are the manager-internal spanning-tree messages, so reduction control
  flow is fully reconstructible.
* **False** (stock behaviour before the paper): "only the explicit messages
  in the reduction were recorded between processors" — manager executions
  still appear, but their triggering dependencies are missing, producing
  the disconnected partition DAGs of Section 3.1.4 / Figure 24.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.trace.events import NO_ID, EventKind
from repro.trace.model import Trace, TraceBuilder


@dataclass
class TracingOptions:
    """Controls what the simulated tracing framework records."""

    #: Master switch; when False the run produces an empty trace.
    enabled: bool = True
    #: Section 5 extension: record process-local reduction control flow.
    trace_reductions: bool = True
    #: Record SDAG serial metadata (entry ordinals).  The paper notes its
    #: traces "did not capture all control information"; turning this off
    #: removes the serial-numbering happened-before heuristic's inputs and
    #: makes the structure depend on the Section 3.1.4 inference
    #: (the Figure 17 scenario).
    record_sdag: bool = True
    #: Record per-PE idle intervals (needed by the idle-experienced metric).
    record_idle: bool = True
    #: Per-event cost (in time units) charged to the traced execution,
    #: modelling tracing overhead.  The Section 5 overhead study varies it.
    event_overhead: float = 0.0


class CharmTracer:
    """Accumulates trace records during a simulated run."""

    def __init__(self, num_pes: int, options: Optional[TracingOptions] = None,
                 metadata: Optional[Dict[str, object]] = None):
        self.options = options or TracingOptions()
        self.builder = TraceBuilder(num_pes=num_pes, metadata=metadata)
        self._entry_ids: Dict[Tuple[str, str], int] = {}
        #: Total overhead time injected by tracing, for the Section 5 study.
        self.overhead_time: float = 0.0
        self.events_recorded: int = 0

    # -- registries ------------------------------------------------------
    def register_entry(
        self,
        chare_type: str,
        name: str,
        is_sdag_serial: bool = False,
        sdag_ordinal: int = -1,
    ) -> int:
        """Idempotently register an entry method; returns its trace id."""
        key = (chare_type, name)
        if key not in self._entry_ids:
            if not self.options.record_sdag:
                is_sdag_serial = False
                sdag_ordinal = -1
            self._entry_ids[key] = self.builder.add_entry(
                name=f"{chare_type}::{name}",
                chare_type=chare_type,
                is_sdag_serial=is_sdag_serial,
                sdag_ordinal=sdag_ordinal,
            )
        return self._entry_ids[key]

    def register_array(self, name: str, shape: Tuple[int, ...]) -> int:
        """Register a chare array; returns its trace id."""
        return self.builder.add_array(name, shape)

    def register_chare(
        self,
        name: str,
        array_id: int = NO_ID,
        index: Tuple[int, ...] = (),
        is_runtime: bool = False,
        home_pe: int = 0,
    ) -> int:
        """Register a chare; returns its trace id."""
        return self.builder.add_chare(name, array_id, index, is_runtime, home_pe)

    # -- event recording ---------------------------------------------------
    def begin_execution(self, chare: int, entry: int, pe: int, start: float) -> int:
        """Open an execution record (end time patched at completion)."""
        return self.builder.add_execution(chare, entry, pe, start, start)

    def end_execution(self, exec_id: int, end: float) -> None:
        """Close an execution record."""
        self.builder.set_execution_end(exec_id, end)

    def record_send(self, chare: int, pe: int, time: float, exec_id: int) -> int:
        """Record a SEND dependency event inside ``exec_id``."""
        self.events_recorded += 1
        self.overhead_time += self.options.event_overhead
        return self.builder.add_event(EventKind.SEND, chare, pe, time, exec_id)

    def record_message(self, send_event: int) -> int:
        """Open a message record anchored at ``send_event``."""
        return self.builder.add_message(send_event=send_event)

    def record_recv(self, chare: int, pe: int, time: float, exec_id: int,
                    message_id: int) -> int:
        """Record the RECV endpoint of ``message_id`` starting ``exec_id``."""
        self.events_recorded += 1
        self.overhead_time += self.options.event_overhead
        recv_ev = self.builder.add_event(EventKind.RECV, chare, pe, time, exec_id)
        self.builder.set_recv_event(message_id, recv_ev)
        self.builder.set_execution_recv(exec_id, recv_ev)
        return recv_ev

    def record_idle(self, pe: int, start: float, end: float) -> None:
        """Record an idle interval if idle tracking is on."""
        if self.options.record_idle:
            self.builder.add_idle(pe, start, end)

    def build(self) -> Trace:
        """Finalize into an indexed :class:`~repro.trace.model.Trace`."""
        return self.builder.build()
