"""Discrete-event simulation core.

A minimal, deterministic event-queue engine: callbacks are scheduled at
absolute times and executed in (time, insertion-sequence) order, so runs
are reproducible given fixed model seeds.  Both simulators build on this.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional


class Simulator:
    """A deterministic discrete-event scheduler.

    Events scheduled at equal times fire in insertion order, which keeps
    simulations reproducible — important because the analysis under test is
    specifically about untangling (controlled) non-determinism.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list = []
        self._seq = itertools.count()
        self._events_processed = 0

    def schedule(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to fire at absolute time ``time``.

        Scheduling in the past (relative to the running clock) is a bug in
        the model and raises immediately rather than silently reordering.
        """
        if time < self.now - 1e-12:
            raise ValueError(
                f"cannot schedule event at {time} before current time {self.now}"
            )
        heapq.heappush(self._queue, (time, next(self._seq), callback))

    def schedule_after(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to fire ``delay`` after the current time."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.schedule(self.now + delay, callback)

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> None:
        """Drain the event queue, optionally stopping at time ``until``.

        ``max_events`` guards against runaway models (e.g. an application
        bug creating a self-perpetuating message storm).
        """
        processed = 0
        while self._queue:
            time, _seq, callback = self._queue[0]
            if until is not None and time > until:
                break
            heapq.heappop(self._queue)
            self.now = time
            callback()
            processed += 1
            if processed > max_events:
                raise RuntimeError(f"simulation exceeded {max_events} events; runaway model?")
        self._events_processed += processed

    @property
    def events_processed(self) -> int:
        """Total number of events executed across all :meth:`run` calls."""
        return self._events_processed

    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)
