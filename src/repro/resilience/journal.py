"""Crash-safe batch run journal: append-only, fsync'd, torn-tail tolerant.

``repro batch`` over a large corpus can die at any moment — a host
reboot, an OOM kill, a ``kill -9`` of the scheduler itself.  The journal
makes that survivable: every finished trace appends one JSON line
(flushed and fsync'd before the scheduler moves on), so on restart
``repro batch --resume <journal>`` knows exactly which traces completed
and re-runs only the pending or failed ones.

File format — one JSON object per line:

* ``{"kind": "meta", "version": 1, "options": <options token>}`` —
  written when the journal is opened for a run; repeated meta lines
  (one per resumed run) are fine, but their options token must match.
* ``{"kind": "done", "source", "digest", "summary", "seconds",
  "attempts", "timed_out"}`` — a trace extracted successfully.
* ``{"kind": "fail", "source", "digest", "error", "attempts",
  "timed_out"}`` — a trace that exhausted its retries.

A process killed mid-append leaves at most one torn final line; the
loader ignores an undecodable tail (and counts, but tolerates, any
undecodable interior line), and a resumed run terminates the torn
fragment before appending so its own entries stay parseable.  Because a "done" line is only written
*after* its trace's summary is complete, and resume skips exactly the
digests with "done" lines, a trace is never extracted twice and never
lost, no matter where the kill landed.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

from repro.chaos.fs import REAL_FS, FsOps

JOURNAL_VERSION = 1


@dataclass
class JournalState:
    """Parsed contents of a journal file."""

    #: digest -> the latest "done" entry for that trace.
    done: Dict[str, dict] = field(default_factory=dict)
    #: digest -> the latest "fail" entry (superseded by a later "done").
    failed: Dict[str, dict] = field(default_factory=dict)
    #: Options token from the meta line(s), None when no meta survived.
    options: Optional[str] = None
    #: Total well-formed entry lines read.
    entries: int = 0
    #: Undecodable lines skipped (1 for a torn tail is normal).
    corrupt_lines: int = 0

    def is_done(self, digest: str) -> bool:
        return digest in self.done


def read_journal(path: Union[str, Path]) -> JournalState:
    """Parse a journal, tolerating a torn final line (kill -9 mid-write).

    A missing file reads as an empty journal: resuming from a journal
    that was never created simply runs everything.
    """
    state = JournalState()
    try:
        raw = Path(path).read_bytes()
    except OSError:
        return state
    for line in raw.split(b"\n"):
        if not line.strip():
            continue
        try:
            entry = json.loads(line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            state.corrupt_lines += 1
            continue
        if not isinstance(entry, dict):
            state.corrupt_lines += 1
            continue
        state.entries += 1
        kind = entry.get("kind")
        digest = entry.get("digest", "")
        if kind == "meta":
            state.options = entry.get("options")
        elif kind == "done" and digest:
            state.done[digest] = entry
            state.failed.pop(digest, None)
        elif kind == "fail" and digest:
            state.failed[digest] = entry
    return state


class JournalWriter:
    """Append-only fsync'd JSONL writer with torn-tail repair.

    The durability core shared by :class:`RunJournal` (batch runs) and
    the ``repro serve`` job ledger (:class:`repro.serve.jobs.JobLedger`):
    every :meth:`record` call appends exactly one JSON line and is
    flushed + fsync'd before returning, so a reader after ``kill -9``
    sees every completed append and at most one torn final line.
    Opening with ``append=True`` keeps the existing file and terminates
    a torn tail (so the next line starts cleanly); otherwise the file is
    truncated.

    ``fs`` is the filesystem ops seam (:class:`repro.chaos.fs.FsOps`);
    the default delegates straight to the stdlib, a chaos fs injects
    scheduled faults so the durability story is provable under test.
    """

    def __init__(self, path: Union[str, Path], append: bool = False,
                 fs: Optional[FsOps] = None) -> None:
        self.path = Path(path)
        self.fs = fs if fs is not None else REAL_FS
        self.path.parent.mkdir(parents=True, exist_ok=True)
        torn_tail = False
        if append:
            try:
                with open(self.path, "rb") as fh:
                    fh.seek(0, os.SEEK_END)
                    if fh.tell() > 0:
                        fh.seek(-1, os.SEEK_END)
                        torn_tail = fh.read(1) != b"\n"
            except OSError:
                pass  # no existing file: nothing to terminate
        self._fh = self.fs.open(str(self.path), "ab" if append else "wb")
        if torn_tail:
            # A kill -9 mid-append left an unterminated final line;
            # terminate it so the next entry starts on its own line
            # instead of concatenating into one unparseable fragment.
            self._fh.write(b"\n")

    def record(self, kind: str, **fields: object) -> None:
        """Append one entry; durable (flushed + fsync'd) before returning."""
        entry = {"kind": kind, **fields}
        data = json.dumps(entry, sort_keys=True).encode("utf-8") + b"\n"
        self._fh.write(data)
        self._fh.flush()
        self.fs.fsync(self._fh.fileno())

    def close(self) -> None:
        try:
            self._fh.close()
        except OSError:
            pass

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class RunJournal:
    """Append-only writer for one batch run's journal.

    Opening with ``resume=True`` keeps the existing file and returns its
    parsed state (raising ``ValueError`` if it was written under a
    different options token — resuming under different extraction
    options would silently mix incompatible results).  Without
    ``resume``, an existing file is truncated and the run starts a fresh
    journal.
    """

    def __init__(self, path: Union[str, Path], options_token: str = "",
                 resume: bool = False, fs: Optional[FsOps] = None) -> None:
        self.path = Path(path)
        self.options_token = options_token
        self.state = read_journal(self.path) if resume else JournalState()
        if (resume and self.state.options is not None and options_token
                and self.state.options != options_token):
            raise ValueError(
                f"journal {self.path} was written under different pipeline "
                f"options; resuming it with these options would mix "
                f"incompatible results (use a fresh journal, or rerun with "
                f"the original options)"
            )
        self._writer = JournalWriter(self.path, append=resume, fs=fs)
        self.record("meta", version=JOURNAL_VERSION, options=options_token)

    # ------------------------------------------------------------------
    def record(self, kind: str, **fields: object) -> None:
        """Append one entry; durable (flushed + fsync'd) before returning."""
        self._writer.record(kind, **fields)

    def record_done(self, source: str, digest: str, summary: dict,
                    seconds: float = 0.0, attempts: int = 1,
                    timed_out: bool = False) -> None:
        self.record("done", source=source, digest=digest, summary=summary,
                    seconds=seconds, attempts=attempts, timed_out=timed_out)

    def record_fail(self, source: str, digest: str, error: str,
                    attempts: int = 1, timed_out: bool = False) -> None:
        self.record("fail", source=source, digest=digest, error=error,
                    attempts=attempts, timed_out=timed_out)

    def is_done(self, digest: str) -> bool:
        return self.state.is_done(digest)

    def done_entry(self, digest: str) -> Optional[dict]:
        return self.state.done.get(digest)

    def close(self) -> None:
        self._writer.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
