"""Supervisor-style resilience for the extraction pipeline.

The paper's algorithm is a straight line of stages; production traffic
needs that line to bend instead of break.  This package supplies the
machinery, kept deliberately independent of the pipeline's algorithmic
modules so either side can evolve alone:

* :mod:`repro.resilience.executor` — the declarative stage graph and the
  :class:`ResilientExecutor` that runs it with fallback ladders,
  graceful degradation, and between-stage checkpoints;
* :mod:`repro.resilience.guard` — per-stage wall-clock/RSS watchdog;
* :mod:`repro.resilience.checkpoint` — atomic checkpoint files keyed by
  (trace digest, result-affecting options);
* :mod:`repro.resilience.journal` — the crash-safe batch run journal
  behind ``repro batch --resume``;
* :mod:`repro.resilience.report` — :class:`DegradationReport`, the
  structured answer to "what did the executor have to do".

See ``docs/ROBUSTNESS.md`` for the degradation matrix and the on-disk
formats.
"""

from repro.resilience.checkpoint import (
    checkpoint_key,
    checkpoint_path,
    discard_checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.resilience.executor import (
    ON_ERROR_MODES,
    ResilientExecutor,
    StageError,
    StageSpec,
)
from repro.resilience.guard import (
    ResourceGuard,
    StageBreachError,
    current_rss_mb,
)
from repro.resilience.journal import (
    JournalState,
    JournalWriter,
    RunJournal,
    read_journal,
)
from repro.resilience.report import DegradationReport, StageOutcome

__all__ = [
    "ON_ERROR_MODES",
    "DegradationReport",
    "JournalState",
    "JournalWriter",
    "ResilientExecutor",
    "ResourceGuard",
    "RunJournal",
    "StageBreachError",
    "StageError",
    "StageOutcome",
    "StageSpec",
    "checkpoint_key",
    "checkpoint_path",
    "current_rss_mb",
    "discard_checkpoint",
    "load_checkpoint",
    "read_journal",
    "save_checkpoint",
]
