"""Degradation reporting: what the resilient executor did to finish.

Every stage the executor runs produces a :class:`StageOutcome`; the
:class:`DegradationReport` collects them and answers the questions a
campaign operator asks about a run that did not go perfectly: which
stages fell back to a safe path, which were skipped entirely, which
resource guard tripped, and whether any of the result is therefore
partial.  The report is threaded through
:class:`~repro.core.pipeline.PipelineStats`, ``repro analyze --json``,
and ``repro batch`` result rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Outcome statuses, in increasing order of degradation.
STATUS_OK = "ok"
STATUS_FALLBACK = "fallback"
STATUS_SKIPPED = "skipped"


@dataclass
class StageOutcome:
    """How one stage of the pipeline actually completed.

    ``status`` is one of:

    * ``"ok"`` — the primary path succeeded;
    * ``"fallback"`` — the primary path failed and a declared fallback
      produced the stage's result (``path`` names which one);
    * ``"skipped"`` — every path failed (or a prerequisite stage was
      skipped) and the stage was omitted, leaving the result partial.

    ``resumed`` is orthogonal to ``status``: a stage restored from a
    checkpoint rather than re-run keeps the status, path, and timing of
    the run that produced it, so a resumed report is identical to the
    uninterrupted one apart from this flag.
    """

    stage: str
    status: str = STATUS_OK
    #: Which implementation produced the result ("primary" or the
    #: fallback's name); empty when the stage was skipped.
    path: str = "primary"
    #: Why the primary (and any earlier fallbacks) failed; empty when ok.
    reason: str = ""
    seconds: float = 0.0
    #: Resource-guard breach observed during the stage ("" | "deadline"
    #: | "rss").  A breach that soft-aborted the stage also shows up in
    #: ``reason``; a breach on a stage that completed anyway is recorded
    #: here without affecting the result.
    breach: str = ""
    #: Restored from a checkpoint instead of re-run (status preserved).
    resumed: bool = False

    def to_dict(self) -> dict:
        return {
            "stage": self.stage,
            "status": self.status,
            "path": self.path,
            "reason": self.reason,
            "seconds": self.seconds,
            "breach": self.breach,
            "resumed": self.resumed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StageOutcome":
        return cls(
            stage=data["stage"],
            status=data.get("status", STATUS_OK),
            path=data.get("path", "primary"),
            reason=data.get("reason", ""),
            seconds=data.get("seconds", 0.0),
            breach=data.get("breach", ""),
            resumed=data.get("resumed", False),
        )


@dataclass
class DegradationReport:
    """All stage outcomes of one resilient pipeline run."""

    outcomes: List[StageOutcome] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        """True when any stage fell back, was skipped, or breached a guard."""
        return any(
            o.status in (STATUS_FALLBACK, STATUS_SKIPPED) or o.breach
            for o in self.outcomes
        )

    @property
    def resumed(self) -> bool:
        """True when any stage was restored from a checkpoint."""
        return any(o.resumed for o in self.outcomes)

    @property
    def complete(self) -> bool:
        """True when no stage was skipped (the result is not partial)."""
        return all(o.status != STATUS_SKIPPED for o in self.outcomes)

    @property
    def fallbacks(self) -> List[StageOutcome]:
        return [o for o in self.outcomes if o.status == STATUS_FALLBACK]

    @property
    def skipped(self) -> List[StageOutcome]:
        return [o for o in self.outcomes if o.status == STATUS_SKIPPED]

    def by_stage(self) -> Dict[str, StageOutcome]:
        """Latest outcome per stage name."""
        return {o.stage: o for o in self.outcomes}

    def outcome(self, stage: str) -> Optional[StageOutcome]:
        return self.by_stage().get(stage)

    def summary(self) -> str:
        """One-line human description for CLI table output."""
        if not self.degraded:
            return "clean"
        parts = []
        for o in self.outcomes:
            if o.status == STATUS_FALLBACK:
                parts.append(f"{o.stage}->{o.path}")
            elif o.status == STATUS_SKIPPED:
                parts.append(f"{o.stage}:skipped")
            elif o.breach:
                parts.append(f"{o.stage}:{o.breach}-breach")
        return ", ".join(parts)

    def to_dict(self) -> dict:
        return {
            "degraded": self.degraded,
            "complete": self.complete,
            "resumed": self.resumed,
            "stages": [o.to_dict() for o in self.outcomes],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DegradationReport":
        return cls(outcomes=[
            StageOutcome.from_dict(o) for o in data.get("stages", [])
        ])
