"""Per-stage resource guards: wall-clock deadlines and RSS ceilings.

A pipeline stage that hangs or balloons memory takes the whole process
with it — under a batch scheduler that means a killed worker and a lost
run.  :class:`ResourceGuard` turns both failure modes into an ordinary
Python exception the resilient executor can handle: a daemon watchdog
thread samples elapsed wall clock and current RSS while a stage runs,
and on breach soft-aborts the stage by injecting
:class:`StageBreachError` into the executing thread
(``PyThreadState_SetAsyncExc``).

The injection lands at the next Python bytecode boundary, so a stage
stuck inside one long C call (a NumPy kernel) cannot be interrupted
mid-call; the breach is still recorded and surfaces on the stage's
outcome when the call returns.  Pure-Python stages — exactly the ones
that hang on pathological inputs — abort promptly.

RSS is read from ``/proc/self/status`` (VmRSS).  On platforms without
procfs the RSS ceiling is silently inactive; the deadline always works.
"""

from __future__ import annotations

import ctypes
import threading
import time as _time
from contextlib import contextmanager
from typing import Iterator, Optional, Tuple


class StageBreachError(RuntimeError):
    """A stage exceeded its wall-clock deadline or RSS ceiling."""


def current_rss_mb() -> Optional[float]:
    """Current resident set size in MiB, or None when unavailable."""
    try:
        with open("/proc/self/status", "r") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return float(line.split()[1]) / 1024.0
    except (OSError, ValueError, IndexError):
        pass
    return None


def _inject(thread_id: int, exc: Optional[type]) -> bool:
    """Raise ``exc`` asynchronously in ``thread_id`` (None cancels)."""
    target = ctypes.py_object(exc) if exc is not None else None
    n = ctypes.pythonapi.PyThreadState_SetAsyncExc(
        ctypes.c_ulong(thread_id), target
    )
    return n == 1


class ResourceGuard:
    """Watchdog for pipeline stages.

    ``deadline`` is the wall-clock budget in seconds per guarded block;
    ``max_rss_mb`` the process RSS ceiling in MiB.  With both None the
    guard is inert and :meth:`watch` costs nothing.  One guard instance
    serves a whole pipeline run; :attr:`breach` holds the last breach as
    ``(stage, kind, detail)``.
    """

    def __init__(self, deadline: Optional[float] = None,
                 max_rss_mb: Optional[float] = None,
                 interval: float = 0.02) -> None:
        if deadline is not None and deadline <= 0:
            raise ValueError("deadline must be positive (or None)")
        if max_rss_mb is not None and max_rss_mb <= 0:
            raise ValueError("max_rss_mb must be positive (or None)")
        self.deadline = deadline
        self.max_rss_mb = max_rss_mb
        self.interval = interval
        #: Last breach observed by the watchdog: (stage, kind, detail).
        self.breach: Optional[Tuple[str, str, str]] = None

    @property
    def active(self) -> bool:
        return self.deadline is not None or self.max_rss_mb is not None

    def _watchdog(self, stage: str, target_id: int, started: float,
                  stop: threading.Event, injected: threading.Event,
                  completed: threading.Event) -> None:
        while not stop.wait(self.interval):
            if self.deadline is not None:
                elapsed = _time.monotonic() - started  # repro-lint: disable=DET001 reason=watchdog deadline sampling, not result data
                if elapsed > self.deadline:
                    self._breached(
                        stage, "deadline",
                        f"stage {stage!r} exceeded {self.deadline:g}s "
                        f"wall clock ({elapsed:.2f}s elapsed)",
                        target_id, injected, completed,
                    )
                    return
            if self.max_rss_mb is not None:
                rss = current_rss_mb()
                if rss is not None and rss > self.max_rss_mb:
                    self._breached(
                        stage, "rss",
                        f"stage {stage!r} RSS {rss:.0f} MiB exceeded the "
                        f"{self.max_rss_mb:g} MiB ceiling",
                        target_id, injected, completed,
                    )
                    return

    def _breached(self, stage: str, kind: str, detail: str, target_id: int,
                  injected: threading.Event,
                  completed: threading.Event) -> None:
        self.breach = (stage, kind, detail)
        # The body may have finished while we were sampling: the breach
        # is recorded on the outcome, but a completed stage is never
        # shot down after the fact.
        if completed.is_set():
            return
        injected.set()
        _inject(target_id, StageBreachError)

    @contextmanager
    def watch(self, stage: str) -> Iterator[None]:
        """Guard the enclosed block; breach injects StageBreachError."""
        if not self.active:
            yield
            return
        target_id = threading.get_ident()
        stop = threading.Event()
        injected = threading.Event()
        completed = threading.Event()
        thread = threading.Thread(
            target=self._watchdog,
            args=(stage, target_id, _time.monotonic(), stop, injected,  # repro-lint: disable=DET001 reason=watchdog start timestamp, not result data
                  completed),
            name=f"repro-watchdog-{stage}",
            daemon=True,
        )
        thread.start()
        try:
            yield
            completed.set()
        finally:
            # A pending injection can land at any bytecode boundary in
            # this block (even inside stop.set()), skipping the rest of
            # the cleanup: retry until the cancel/join actually ran, and
            # swallow a breach that landed only after the body had
            # already completed.
            late: Optional[StageBreachError] = None
            while True:
                try:
                    stop.set()
                    thread.join()
                    # The stage finished between the injection request
                    # and the exception landing: cancel the pending
                    # async raise so it cannot fire in unrelated later
                    # code.
                    if injected.is_set():
                        _inject(target_id, None)
                    break
                except StageBreachError as exc:
                    late = exc
            if late is not None and not completed.is_set():
                raise late
