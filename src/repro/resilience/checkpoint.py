"""Atomic between-stage checkpoints for the extraction pipeline.

A checkpoint is one file per (trace, options) pair under the caller's
``checkpoint_dir``, rewritten after every completed stage and replaced
atomically (temp file + fsync + ``os.replace``), so a killed run leaves
either the previous complete snapshot or the new one — never a torn
file.  Corrupt, unreadable, version-skewed, or key-mismatched files are
treated as "no checkpoint" and the run starts from scratch.

File format (``<key>.ckpt``): a pickle of::

    {
        "version": 2,
        "key": <sha256 of trace digest + result-affecting options>,
        "completed": [stage names, in execution order],
        "outcomes": [StageOutcome dicts for the completed stages],
        "ctx": {pipeline context: partition state, phases, arrays, ...},
    }

Version 2 guarantees ``completed``/``outcomes`` list only successfully
completed (ok or fallback) stages — the executor never checkpoints a
skipped stage — and outcome dicts carry their original status plus a
``resumed`` flag.  Version-1 files (whose outcomes could be rewritten
to ``"resumed"`` and whose ``completed`` could include skipped stages)
are discarded like any other version skew.

The context snapshot is pickled in a single dump, so object identity
within it (the trace shared by the partition state and the block table)
survives the round trip and a resumed run is bit-identical to an
uninterrupted one.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import uuid
from pathlib import Path
from typing import List, Optional, Tuple, Union

CHECKPOINT_VERSION = 2
CHECKPOINT_SUFFIX = ".ckpt"


def checkpoint_key(trace_digest: str, options_token: str) -> str:
    """Stable key naming one (trace, result-affecting options) pair."""
    return hashlib.sha256(
        (trace_digest + "\n" + options_token).encode()
    ).hexdigest()


def checkpoint_path(directory: Union[str, Path], key: str) -> Path:
    """Path of the checkpoint file for ``key`` under ``directory``."""
    return Path(directory) / f"{key}{CHECKPOINT_SUFFIX}"


def save_checkpoint(directory: Union[str, Path], key: str,
                    completed: List[str], outcomes: List[dict],
                    ctx_pickle: bytes) -> Path:
    """Atomically write the checkpoint for ``key``; returns its path.

    ``ctx_pickle`` is the already-pickled context snapshot (the executor
    pickles it anyway for fallback restore, so no double serialization).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = checkpoint_path(directory, key)
    header = {
        "version": CHECKPOINT_VERSION,
        "key": key,
        "completed": list(completed),
        "outcomes": list(outcomes),
    }
    tmp = directory / f".{key}.{os.getpid()}.{uuid.uuid4().hex}.tmp"
    try:
        with open(tmp, "wb") as fh:
            pickle.dump(header, fh, protocol=pickle.HIGHEST_PROTOCOL)
            fh.write(ctx_pickle)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # replace failed midway: don't litter
            try:
                tmp.unlink()
            except OSError:
                pass
    return path


def load_checkpoint(directory: Union[str, Path],
                    key: str) -> Optional[Tuple[List[str], List[dict], dict]]:
    """Load the checkpoint for ``key``; None when absent or unusable.

    Returns ``(completed stage names, outcome dicts, restored ctx)``.
    Any defect — missing file, truncation, pickle corruption, version or
    key mismatch — reads as "no checkpoint"; resumability must never
    turn into a new failure mode.
    """
    path = checkpoint_path(directory, key)
    try:
        with open(path, "rb") as fh:
            header = pickle.load(fh)
            if (not isinstance(header, dict)
                    or header.get("version") != CHECKPOINT_VERSION
                    or header.get("key") != key):
                return None
            ctx = pickle.load(fh)
        if not isinstance(ctx, dict):
            return None
        return list(header["completed"]), list(header["outcomes"]), ctx
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
            ImportError, IndexError, KeyError, ValueError):
        return None


def discard_checkpoint(directory: Union[str, Path], key: str) -> bool:
    """Remove the checkpoint for ``key``; True if one existed."""
    path = checkpoint_path(directory, key)
    try:
        path.unlink()
        return True
    except OSError:
        return False
