"""The resilient stage executor.

:class:`ResilientExecutor` runs a declarative list of
:class:`StageSpec` over a mutable context dict — the pipeline's
intermediate state — and owns everything the stages should not know
about:

* **Fallbacks.**  Each stage may declare an ordered ladder of fallback
  implementations (columnar kernel → python reference → physical-time
  ordering).  When a primary path raises, the context is restored from
  the pre-stage snapshot and the next path runs; the stage's outcome
  records which path produced the result and why the others failed.
* **Graceful degradation.**  A stage marked ``degradable`` whose every
  path failed is skipped: the context is restored, the outcome says so,
  and the run continues to a partial result instead of losing the
  completed stages.
* **Resource guards.**  Each attempt runs under a
  :class:`~repro.resilience.guard.ResourceGuard` watch; a deadline or
  RSS breach soft-aborts the attempt (a breach on an attempt that
  completed anyway is recorded on the outcome without discarding it).
* **Checkpoints.**  With a ``checkpoint_dir``, the context is snapshotted
  after every *successfully* completed stage (atomic replace, see
  :mod:`repro.resilience.checkpoint`); a later run with the same key
  resumes after the last completed stage, re-emitting the checkpointed
  outcomes (original status, path, and timing preserved) with their
  ``resumed`` flag set.  A skipped stage is never checkpointed — once a
  stage degrades to skipped, checkpointing stops for the rest of the
  run, so a resume always re-attempts the skipped work instead of
  presenting a partial result as complete.  A checkpoint whose outcomes
  the current ``on_error`` mode could not have produced (e.g. a
  fallback-path result resumed under ``"raise"``) is refused and the
  run starts fresh.

Error policy (``on_error``): ``"raise"`` (default) propagates the first
stage failure unchanged — bit-for-bit the historical behavior, with no
snapshotting cost; ``"fallback"`` walks the fallback ladder and raises
only when every path failed; ``"degrade"`` additionally skips degradable
stages so the run always produces its best partial result.

Context snapshots are single-dump pickles, so shared references inside
the state survive restore and a resumed or fallback run stays
bit-identical to an uninterrupted one.
"""

from __future__ import annotations

import pickle
import time as _time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.resilience.checkpoint import load_checkpoint, save_checkpoint
from repro.resilience.guard import ResourceGuard, StageBreachError
from repro.resilience.report import (
    STATUS_FALLBACK,
    STATUS_OK,
    STATUS_SKIPPED,
    DegradationReport,
    StageOutcome,
)

#: Outcome statuses each on_error mode is able to produce.  A checkpoint
#: containing a status outside the current mode's set was written under
#: a laxer policy and must not be resumed into the stricter run.
_MODE_STATUSES = {
    "raise": frozenset({STATUS_OK}),
    "fallback": frozenset({STATUS_OK, STATUS_FALLBACK}),
    "degrade": frozenset({STATUS_OK, STATUS_FALLBACK}),
}

ON_ERROR_MODES = ("raise", "fallback", "degrade")

StageFn = Callable[[dict], None]


@dataclass
class StageSpec:
    """One stage of the pipeline graph.

    ``run`` mutates the context dict in place; ``inputs``/``outputs``
    document (and ``requires`` enforces) the context keys the stage
    consumes and produces.  ``fallbacks`` is an ordered ladder of
    ``(name, fn)`` alternatives tried when an earlier path raises.
    """

    name: str
    run: StageFn
    inputs: Tuple[str, ...] = ()
    outputs: Tuple[str, ...] = ()
    fallbacks: Sequence[Tuple[str, StageFn]] = ()
    #: May the run continue (with a partial result) if every path fails?
    degradable: bool = False
    #: Optional predicate deciding whether the stage runs at all for
    #: these options (a disabled stage produces no outcome).
    enabled: Optional[Callable[[dict], bool]] = None
    #: Context keys that must exist before the stage can run; a missing
    #: key (an upstream stage was skipped) skips this stage too.
    requires: Tuple[str, ...] = ()


class StageError(RuntimeError):
    """Raised when a non-degradable stage failed on every declared path."""

    def __init__(self, stage: str, errors: List[str]) -> None:
        self.stage = stage
        self.errors = errors
        super().__init__(
            f"stage {stage!r} failed on every path: " + "; ".join(errors)
        )


class ResilientExecutor:
    """Run a stage list over a context dict with the declared policies."""

    def __init__(
        self,
        stages: Sequence[StageSpec],
        *,
        on_error: str = "raise",
        guard: Optional[ResourceGuard] = None,
        checkpoint_dir: Optional[str] = None,
        checkpoint_key: str = "",
        observer: Optional[Callable[[str, float, dict], None]] = None,
    ) -> None:
        if on_error not in ON_ERROR_MODES:
            raise ValueError(f"unknown on_error mode {on_error!r}")
        self.stages = list(stages)
        self.on_error = on_error
        self.guard = guard if guard is not None else ResourceGuard()
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_key = checkpoint_key
        self.observer = observer

    # ------------------------------------------------------------------
    def _need_snapshot(self) -> bool:
        return self.on_error != "raise" or self.checkpoint_dir is not None

    def _attempts(self, spec: StageSpec) -> List[Tuple[str, StageFn]]:
        attempts: List[Tuple[str, StageFn]] = [("primary", spec.run)]
        if self.on_error != "raise":
            attempts.extend(spec.fallbacks)
        return attempts

    def _run_stage(self, spec: StageSpec, ctx: dict,
                   snapshot: Optional[bytes]) -> StageOutcome:
        errors: List[str] = []
        last_exc: Optional[BaseException] = None
        for index, (path, fn) in enumerate(self._attempts(spec)):
            if index > 0 and snapshot is not None:
                # The failed path may have half-mutated the state; start
                # the fallback from the pre-stage snapshot.
                ctx.clear()
                ctx.update(pickle.loads(snapshot))
            self.guard.breach = None
            t0 = _time.perf_counter()  # repro-lint: disable=DET001 reason=per-stage timing telemetry for the degradation report
            try:
                with self.guard.watch(spec.name):
                    fn(ctx)
                seconds = _time.perf_counter() - t0  # repro-lint: disable=DET001 reason=per-stage timing telemetry for the degradation report
                if self.observer is not None:
                    # Hooks and strict verification run per attempt: a
                    # fallback result is re-checked, not waved through.
                    self.observer(spec.name, seconds, ctx)
            except Exception as exc:
                last_exc = exc
                errors.append(f"{path}: {type(exc).__name__}: {exc}")
                if self.on_error == "raise":
                    raise
                continue
            breach = self.guard.breach
            return StageOutcome(
                spec.name,
                status=STATUS_OK if index == 0 else STATUS_FALLBACK,
                path=path,
                reason="; ".join(errors),
                seconds=seconds,
                breach=breach[1] if breach is not None else "",
            )
        if spec.degradable and self.on_error == "degrade":
            if snapshot is not None:
                ctx.clear()
                ctx.update(pickle.loads(snapshot))
            return StageOutcome(spec.name, status=STATUS_SKIPPED, path="",
                                reason="; ".join(errors))
        if isinstance(last_exc, StageBreachError) or len(errors) > 1:
            raise StageError(spec.name, errors) from last_exc
        assert last_exc is not None  # the attempt loop always runs once
        raise last_exc  # single ordinary failure: propagate it unchanged

    # ------------------------------------------------------------------
    def run(self, ctx: dict) -> DegradationReport:
        """Execute the stages over ``ctx``; returns the outcome report."""
        report = DegradationReport()
        completed: List[str] = []
        resumed: List[str] = []
        ckpt_dir = self.checkpoint_dir
        checkpointing = ckpt_dir is not None
        if ckpt_dir is not None:
            loaded = load_checkpoint(ckpt_dir, self.checkpoint_key)
            if loaded is not None and all(
                d.get("status") in _MODE_STATUSES[self.on_error]
                for d in loaded[1]
            ):
                resumed, outcome_dicts, saved_ctx = loaded
                ctx.clear()
                ctx.update(saved_ctx)
                for data in outcome_dicts:
                    outcome = StageOutcome.from_dict(data)
                    outcome.resumed = True
                    report.outcomes.append(outcome)
                completed = list(resumed)

        snapshot: Optional[bytes] = None
        if self._need_snapshot():
            snapshot = pickle.dumps(ctx, protocol=pickle.HIGHEST_PROTOCOL)

        consume = 0  # how many restored stage names we have matched
        for spec in self.stages:
            if spec.enabled is not None and not spec.enabled(ctx):
                continue
            if consume < len(resumed):
                if resumed[consume] == spec.name:
                    consume += 1
                    continue
                # The saved stage list diverged from this run's stages
                # (should not happen for a well-formed key): run the
                # remainder fresh rather than trusting the mismatch.
                resumed = resumed[:consume]
            missing = [k for k in spec.requires if k not in ctx]
            if missing:
                report.outcomes.append(StageOutcome(
                    spec.name, status=STATUS_SKIPPED, path="",
                    reason="missing upstream result(s): "
                           + ", ".join(missing),
                ))
                # A skipped stage is not completed work: freeze the
                # checkpoint at the last clean prefix so a resume
                # re-attempts it rather than resuming past the hole.
                checkpointing = False
                continue
            outcome = self._run_stage(spec, ctx, snapshot)
            report.outcomes.append(outcome)
            if self._need_snapshot():
                snapshot = pickle.dumps(ctx, protocol=pickle.HIGHEST_PROTOCOL)
            if outcome.status == STATUS_SKIPPED:
                checkpointing = False
                continue
            completed.append(spec.name)
            if checkpointing and ckpt_dir is not None:
                save_checkpoint(
                    ckpt_dir, self.checkpoint_key, completed,
                    [o.to_dict() for o in report.outcomes], snapshot,
                )
        return report
