"""Combined performance and verification reports over a logical structure.

Pulls the Section 4 metrics, the critical path, and the phase-pattern
summary into a single plain-text report — the "where do I look first"
artifact a developer would want from a trace.  Used by the CLI
(``repro analyze --report`` / ``repro report``) and the examples.

:func:`verification_report` is the machine-readable counterpart for
``repro verify``: trace-level and structure-level violations, per-stage
timings/merge counts, and the differential matrix, as one JSON-friendly
dict keyed by stable invariant names.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.patterns import kind_sequence, repeating_unit
from repro.core.structure import LogicalStructure
from repro.metrics import (
    critical_path,
    differential_duration,
    idle_experienced,
    imbalance,
    sub_block_durations,
)
from repro.trace.model import Trace
from repro.trace.validate import Violation


def _fmt_entry(name: str) -> str:
    return name.split("::")[-1]


def analysis_document(structure: LogicalStructure, stats,
                      metrics: Optional[Dict[str, dict]] = None) -> dict:
    """The full machine-readable analysis of one extraction.

    The one place the ``repro analyze --json`` document is assembled, so
    every producer — the CLI, ``repro serve`` job workers — emits the
    identical structure for identical inputs (the service's artifacts
    are byte-for-byte what the CLI would have printed).  ``metrics``
    optionally attaches named per-event metric maps; ``stats`` is the
    :class:`~repro.core.pipeline.PipelineStats` of the run.

    The document is **bit-identical across runs** for the same trace
    and options: per-stage wall-clock ``seconds`` are stripped from the
    embedded degradation report (they are run telemetry, not result
    data — still available on :class:`PipelineStats` and in batch
    rows), because the document is what the service caches and serves
    by content key.
    """
    import json as _json

    from repro.viz import structure_to_json

    doc = _json.loads(structure_to_json(structure, metrics or None))
    doc["backend"] = stats.backend
    doc["stage_backends"] = dict(stats.stage_backends)
    if stats.repair is not None:
        doc["repair"] = stats.repair
    if stats.degradation is not None:
        degradation = dict(stats.degradation)
        degradation["stages"] = [
            {k: v for k, v in outcome.items() if k != "seconds"}
            for outcome in degradation.get("stages", [])
        ]
        doc["degradation"] = degradation
    return doc


def performance_report(structure: LogicalStructure, top: int = 5) -> str:
    """Render a plain-text performance report for a structure."""
    trace = structure.trace
    lines: List[str] = []
    s = structure.summary()
    lines.append("== trace ==")
    lines.append(
        f"{len(trace.chares)} chares ({len(trace.runtime_chares())} runtime) "
        f"on {trace.num_pes} PEs; {len(trace.executions)} executions, "
        f"{len(trace.events)} dependency events, span {trace.end_time():.1f}"
    )

    lines.append("")
    lines.append("== logical structure ==")
    lines.append(
        f"{s['phases']} phases ({s['runtime_phases']} runtime), "
        f"{s['max_step'] + 1} logical steps, {s['leaps']} leaps"
    )
    lines.append(f"phase kinds: {kind_sequence(structure)}")
    unit = repeating_unit(structure, min_repeats=2)
    if unit:
        lines.append(f"repeating unit (x{unit[0]['repeats']}):")
        for entry in unit:
            sig = ", ".join(f"{_fmt_entry(n)}x{c}" for n, c in entry["signature"])
            lines.append(f"  [{entry['kind']:11s}] {sig}")

    durations = sub_block_durations(structure)
    total_busy = sum(durations.values())

    lines.append("")
    lines.append("== critical path ==")
    path = critical_path(structure)
    lines.append(
        f"length {path.length:.1f} ({100 * path.share_of(total_busy):.0f}% of "
        f"total busy time), {len(path.events)} events"
    )
    for entry, t in sorted(path.by_entry.items(), key=lambda kv: -kv[1])[:top]:
        lines.append(f"  {t:10.1f}  {_fmt_entry(entry)}")

    lines.append("")
    lines.append("== differential duration (slow vs same-step peers) ==")
    diff = differential_duration(structure)
    ranked = sorted(diff.by_event.items(), key=lambda kv: -kv[1])[:top]
    for ev, value in ranked:
        if value <= 0:
            break
        rec = trace.events[ev]
        lines.append(
            f"  +{value:9.1f}  {trace.chares[rec.chare].name} "
            f"step {structure.step_of_event[ev]}"
        )

    lines.append("")
    lines.append("== idle experienced ==")
    idle = idle_experienced(structure)
    lines.append(f"total {idle.total():.1f} across {len(idle.by_block)} blocks")
    worst_block = idle.max_block()
    if worst_block is not None:
        block = structure.blocks[worst_block]
        lines.append(
            f"  worst: {idle.by_block[worst_block]:.1f} on "
            f"{trace.chares[block.chare].name} (PE {block.pe})"
        )

    lines.append("")
    lines.append("== imbalance ==")
    imb = imbalance(structure)
    if imb.max_by_phase:
        worst = imb.worst_phase()
        lines.append(
            f"worst phase {worst}: spread {imb.max_by_phase[worst]:.1f} "
            f"between most- and least-loaded PEs"
        )
        loads = sorted(
            ((pe, v) for (p, pe), v in imb.by_phase_pe.items() if p == worst),
            key=lambda kv: -kv[1],
        )[:top]
        for pe, v in loads:
            lines.append(f"  PE {pe:3d}: +{v:.1f}")
    return "\n".join(lines)


def verification_report(
    trace: Trace,
    violations: Sequence[Violation],
    structure: Optional[LogicalStructure] = None,
    stages: Optional[Sequence] = None,
    differential: Optional[object] = None,
) -> Dict[str, object]:
    """Machine-readable verification result (``repro verify --json``).

    Parameters
    ----------
    trace:
        The trace that was verified.
    violations:
        Trace- and structure-level :class:`Violation` records (empty when
        everything holds).
    structure:
        The extracted structure, for the summary block (single-run mode).
    stages:
        :class:`repro.verify.stagehooks.StageRecord` rows from the
        instrumented run.
    differential:
        A :class:`repro.verify.differential.DifferentialReport` when the
        full variant matrix was run.
    """
    payload: Dict[str, object] = {
        "ok": not violations and (differential is None or differential.ok),
        "trace": {
            "chares": len(trace.chares),
            "executions": len(trace.executions),
            "events": len(trace.events),
            "messages": len(trace.messages),
            "pes": trace.num_pes,
        },
        "violations": [v.to_dict() for v in violations],
        "invariants_violated": sorted({v.invariant for v in violations}),
    }
    if structure is not None:
        payload["structure"] = structure.summary()
    if stages is not None:
        payload["stages"] = [r.to_dict() for r in stages]
    if differential is not None:
        payload["differential"] = differential.to_dict()
    return payload
