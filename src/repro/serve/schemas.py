"""Request parsing/validation and response shaping for ``repro serve``.

Every endpoint's wire contract lives here, away from socket handling
(:mod:`repro.serve.app`) and job execution (:mod:`repro.serve.jobs`):
the HTTP layer decodes bytes, hands dicts to these validators, and
serializes whatever they (or the service) return.  Validation failures
raise :class:`SchemaError`, which the app maps to a 400 response with
the message as the body — clients always learn *which* field was wrong.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.core.pipeline import PipelineOptions

#: Job lifecycle states (docs/API.md documents the transitions):
#: ``queued`` → ``running`` → ``done`` | ``failed``, or ``queued`` →
#: ``expired`` when a job outlives ``max_queue_age`` before a worker
#: picks it up (load shedding — it never runs).  A submission whose
#: artifact already exists is born ``done`` with ``cached: true``.
JOB_STATES = ("queued", "running", "done", "failed", "expired")

#: PipelineOptions fields a job may set.  ``hooks`` is process-local
#: (not expressible in JSON); everything else round-trips.
OPTION_FIELDS = tuple(sorted(
    f.name for f in dataclasses.fields(PipelineOptions)
    if f.name != "hooks"
))


class SchemaError(ValueError):
    """A request failed validation; ``str(exc)`` is client-safe."""


def require_dict(payload, what: str) -> dict:
    if not isinstance(payload, dict):
        raise SchemaError(f"{what} must be a JSON object")
    return payload


def parse_options(fields: Optional[dict]) -> PipelineOptions:
    """Validate a job's ``options`` object into :class:`PipelineOptions`.

    Unknown fields and ``hooks`` are rejected by name; value validation
    beyond field existence is deferred to extraction (an invalid value
    fails the job with the pipeline's own error message).
    """
    if fields is None:
        return PipelineOptions()
    fields = require_dict(fields, "options")
    if "hooks" in fields:
        raise SchemaError("options.hooks is process-local and cannot be "
                          "set through the service")
    try:
        return PipelineOptions().with_overrides(**fields)
    except TypeError as exc:
        raise SchemaError(
            f"{exc}; settable fields: {', '.join(OPTION_FIELDS)}"
        ) from None


def parse_job_request(payload) -> tuple:
    """``POST /v1/jobs`` body → ``(trace reference, option fields)``."""
    payload = require_dict(payload, "job request")
    trace = payload.get("trace")
    if not isinstance(trace, str) or not trace:
        raise SchemaError('job request needs a non-empty "trace" '
                          '(an upload reference or a registered path)')
    unknown = set(payload) - {"trace", "options"}
    if unknown:
        raise SchemaError(
            f"unknown job request field(s): {', '.join(sorted(unknown))}")
    options = payload.get("options")
    parse_options(options)  # fail fast, before the job is journaled
    return trace, dict(options or {})


def parse_register_request(payload) -> str:
    """``POST /v1/traces/register`` body → the trace path."""
    payload = require_dict(payload, "register request")
    path = payload.get("path")
    if not isinstance(path, str) or not path:
        raise SchemaError('register request needs a non-empty "path"')
    unknown = set(payload) - {"path"}
    if unknown:
        raise SchemaError(
            f"unknown register request field(s): {', '.join(sorted(unknown))}")
    return path
