"""Job ledger, queue, and worker pool behind ``repro serve``.

The service core is framework-free: :class:`JobService` owns the trace
uploads, the :class:`~repro.serve.store.ArtifactStore`, a FIFO job
queue drained by worker threads, and the **job ledger** — the batch
journal pattern (:class:`~repro.resilience.journal.JournalWriter`)
promoted to service duty.  Every state change appends one fsync'd JSON
line *before* the change takes effect for clients:

* ``{"kind": "meta", "version": 1}`` — once per server start;
* ``{"kind": "submit", "job", "seq", "trace", "source", "digest",
  "key", "options"}`` — a job was accepted (queued);
* ``{"kind": "done", "job", "cached", "seconds", "attempts",
  "timed_out"}`` — its artifact is complete (written to the store
  first, so a "done" line always has a fetchable artifact behind it);
* ``{"kind": "fail", "job", "error", "attempts", "timed_out"}`` — it
  exhausted its retries.

Because "submit" is durable before the client sees the job id and
"done"/"fail" are durable only after the outcome exists, a ``kill -9``
of the server at any instant loses nothing: on restart,
:func:`read_job_ledger` reconstructs every job, and those without a
terminal line are re-queued and complete exactly once.  (A job killed
*mid-extraction* re-runs from scratch — extraction is deterministic and
the artifact write is atomic, so the replay is invisible to clients.)

Jobs execute through the existing :class:`~repro.batch.BatchExtractor`
scheduler with :func:`repro.serve.worker.analyze_one` as the job body,
inheriting its per-job wall-clock timeout, retries with backoff, and
crash containment (a segfaulting or OOM-killed extraction fails its job,
never the server).
"""

from __future__ import annotations

import hashlib
import os
import queue
import threading
import time
import uuid
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.batch import BatchExtractor, trace_digest
from repro.chaos import ChaosCrash, FaultPlan
from repro.chaos.fs import REAL_FS
from repro.resilience.journal import JournalWriter
from repro.serve.breaker import CircuitBreaker
from repro.serve.schemas import SchemaError, parse_options
from repro.serve.store import ArtifactStore
from repro.serve.worker import analyze_one, render_document

LEDGER_VERSION = 1

_UPLOAD_PREFIX = "upload:"

#: Job states that never change again (never re-queued on restart).
TERMINAL_STATES = ("done", "failed", "expired")


class OverloadError(RuntimeError):
    """The service refused a submission to protect itself.

    ``status`` is the HTTP status the front end should send (``429``
    for a full queue, ``503`` for an open circuit breaker) and
    ``retry_after`` the seconds a well-behaved client should wait.
    """

    def __init__(self, message: str, *, status: int = 429,
                 retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.status = int(status)
        self.retry_after = float(retry_after)


@dataclass
class JobRecord:
    """One extraction job's full state (mirrors the ledger)."""

    id: str
    seq: int
    trace: str    #: the trace reference as submitted
    source: str   #: the resolved on-disk path extraction reads
    digest: str   #: trace content digest (sha256)
    key: str      #: artifact-store key (digest + resolved options)
    options: dict = field(default_factory=dict)
    status: str = "queued"
    cached: bool = False
    error: str = ""
    seconds: float = 0.0
    attempts: int = 0
    timed_out: bool = False
    #: Monotonic enqueue instant for queue-age expiry.  Process-local
    #: (monotonic clocks do not survive restart), deliberately not
    #: journaled: a restarted server re-queues survivors with a fresh
    #: age rather than mass-expiring a backlog it just recovered.
    enqueued_at: float = 0.0

    def to_dict(self) -> dict:
        """The ``GET /v1/jobs/<id>`` response body."""
        return {
            "job": self.id,
            "status": self.status,
            "trace": self.trace,
            "digest": self.digest,
            "key": self.key,
            "options": dict(self.options),
            "cached": self.cached,
            "error": self.error,
            "seconds": self.seconds,
            "attempts": self.attempts,
            "timed_out": self.timed_out,
        }


def read_job_ledger(path: Union[str, Path]) -> "OrderedDict[str, JobRecord]":
    """Reconstruct job state from a ledger file, in submission order.

    Tolerates a missing file (no jobs yet), a torn final line (``kill
    -9`` mid-append), and unknown entry kinds (forward compatibility).
    Jobs whose latest state is non-terminal come back as ``queued`` —
    whatever they were doing when the server died must be redone.
    """
    import json

    jobs: "OrderedDict[str, JobRecord]" = OrderedDict()
    try:
        raw = Path(path).read_bytes()
    except OSError:
        return jobs
    for line in raw.split(b"\n"):
        if not line.strip():
            continue
        try:
            entry = json.loads(line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            continue  # torn tail or interior corruption: skip the line
        if not isinstance(entry, dict):
            continue
        kind = entry.get("kind")
        if kind == "submit":
            job_id = entry.get("job")
            if not isinstance(job_id, str) or not job_id:
                continue
            jobs[job_id] = JobRecord(
                id=job_id,
                seq=int(entry.get("seq", 0)),
                trace=str(entry.get("trace", "")),
                source=str(entry.get("source", "")),
                digest=str(entry.get("digest", "")),
                key=str(entry.get("key", "")),
                options=dict(entry.get("options") or {}),
            )
        elif kind in ("done", "fail"):
            job = jobs.get(entry.get("job", ""))
            if job is None:
                continue
            if kind == "done":
                job.status = "done"
            elif entry.get("expired"):
                job.status = "expired"
            else:
                job.status = "failed"
            job.cached = bool(entry.get("cached", False))
            job.error = str(entry.get("error", ""))
            job.seconds = float(entry.get("seconds", 0.0))
            job.attempts = int(entry.get("attempts", 0))
            job.timed_out = bool(entry.get("timed_out", False))
    return jobs


class JobLedger:
    """Append-only writer for the service job ledger."""

    def __init__(self, path: Union[str, Path], fs=None) -> None:
        self.path = Path(path)
        self._writer = JournalWriter(self.path, append=True, fs=fs)
        self._writer.record("meta", version=LEDGER_VERSION)

    def submit(self, job: JobRecord) -> None:
        self._writer.record("submit", job=job.id, seq=job.seq,
                            trace=job.trace, source=job.source,
                            digest=job.digest, key=job.key,
                            options=job.options)

    def done(self, job: JobRecord) -> None:
        self._writer.record("done", job=job.id, cached=job.cached,
                            seconds=job.seconds, attempts=job.attempts,
                            timed_out=job.timed_out)

    def fail(self, job: JobRecord) -> None:
        self._writer.record("fail", job=job.id, error=job.error,
                            attempts=job.attempts, timed_out=job.timed_out,
                            seconds=job.seconds)

    def expire(self, job: JobRecord) -> None:
        # A "fail" line with the expired flag: old readers see a plain
        # failure (terminal either way), new ones recover the status.
        self._writer.record("fail", job=job.id, error=job.error,
                            attempts=job.attempts, timed_out=job.timed_out,
                            seconds=job.seconds, expired=True)

    def close(self) -> None:
        self._writer.close()


class JobService:
    """Upload store + artifact store + crash-safe job queue.

    ``data_dir`` is the service's one durable root::

        <data_dir>/uploads/<digest>.jsonl   uploaded trace bodies
        <data_dir>/artifacts/<kk>/<key>.json  sharded artifact store
        <data_dir>/jobs.jsonl               the job ledger

    ``workers`` threads drain the queue (0 = accept jobs but do not
    process them — a queued-only server whose backlog drains on the
    next start; useful for staging and for exercising restart
    recovery).  Each job runs through ``BatchExtractor`` with the given
    ``timeout``/``retries``/``backoff``.  All public methods are
    thread-safe; construction replays the ledger and re-queues every
    job that had not reached a terminal state.

    Overload & failure hardening (see ``docs/ROBUSTNESS.md``):

    * ``max_queue`` bounds admissions — :meth:`submit` raises
      :class:`OverloadError` (429) once that many jobs are waiting;
    * ``max_queue_age`` sheds stale work — a job older than this when a
      worker picks it up becomes ``expired`` without running;
    * a :class:`~repro.serve.breaker.CircuitBreaker`
      (``breaker_threshold`` consecutive distinct-job worker crashes,
      ``breaker_cooldown`` seconds) fails submissions fast (503) while
      the worker pool looks sick;
    * ledger write failures flip the service to **memory-only mode**
      (loud ``RuntimeWarning``, ``/healthz`` degraded) instead of dying;
      artifact-store write failures serve the result inline, uncached,
      and mark ``/healthz`` degraded until a store write succeeds again;
    * ``chaos`` (a :class:`~repro.chaos.FaultPlan`) wires every fault
      seam — ledger/store/upload filesystem ops, the ``worker.run``
      site, and the expiry/breaker clock — for deterministic drills.
    """

    def __init__(self, data_dir: Union[str, Path], *,
                 workers: int = 1,
                 timeout: Optional[float] = None,
                 retries: int = 0,
                 backoff: float = 0.5,
                 max_entries: Optional[int] = None,
                 max_bytes: Optional[int] = None,
                 shard_prefix: int = 2,
                 max_shard_bytes: Optional[int] = None,
                 max_queue: Optional[int] = None,
                 max_queue_age: Optional[float] = None,
                 breaker_threshold: int = 5,
                 breaker_cooldown: float = 30.0,
                 chaos: Optional[FaultPlan] = None):
        self.data_dir = Path(data_dir)
        self.uploads_dir = self.data_dir / "uploads"
        self.uploads_dir.mkdir(parents=True, exist_ok=True)
        self.chaos = chaos
        self._clock = chaos.clock if chaos is not None else time.monotonic
        self._upload_fs = chaos.fs("upload") if chaos is not None else REAL_FS
        self.store = ArtifactStore(
            self.data_dir / "artifacts",
            max_entries=max_entries, max_bytes=max_bytes,
            shard_prefix=shard_prefix, max_shard_bytes=max_shard_bytes,
            fs=chaos.fs("store") if chaos is not None else None,
        )
        self.workers = max(0, int(workers))
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff = max(0.0, float(backoff))
        self.max_queue = None if max_queue is None else max(1, int(max_queue))
        self.max_queue_age = max_queue_age
        self.breaker = CircuitBreaker(threshold=breaker_threshold,
                                      cooldown=breaker_cooldown,
                                      clock=self._clock)
        self.ledger_path = self.data_dir / "jobs.jsonl"
        self._lock = threading.RLock()
        # Signals "a job moved toward idle" (dequeued, expired, done or
        # failed) so drain() can sleep instead of polling.
        self._cond = threading.Condition(self._lock)
        self._jobs = read_job_ledger(self.ledger_path)
        self._seq = max((j.seq for j in self._jobs.values()), default=0)
        self._degraded: Dict[str, str] = {}
        self.ledger_failures = 0
        self.store_write_failures = 0
        self.rejected_queue_full = 0
        self.shed_expired = 0
        self.ledger: Optional[JobLedger] = None
        ledger_fs = chaos.fs("ledger") if chaos is not None else None
        try:
            self.ledger = JobLedger(self.ledger_path, fs=ledger_fs)
        except OSError as exc:
            self._enter_memory_only(exc)
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._queued = 0  # jobs waiting (excludes stop sentinels)
        self._docs: Dict[str, dict] = {}  # degraded results: never cached
        self._threads: List[threading.Thread] = []
        self.recovered = 0
        for job in self._jobs.values():
            if job.status not in TERMINAL_STATES:
                job.status = "queued"
                job.enqueued_at = self._clock()
                self._queue.put(job.id)
                self._queued += 1
                self.recovered += 1

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the worker threads (idempotent)."""
        with self._lock:
            while len(self._threads) < self.workers:
                thread = threading.Thread(
                    target=self._work,
                    name=f"repro-serve-worker-{len(self._threads)}",
                    daemon=True,
                )
                thread.start()
                self._threads.append(thread)

    def stop(self, wait: bool = True) -> None:
        """Stop the workers after their current job and close the ledger."""
        with self._lock:
            threads, self._threads = self._threads, []
        for _ in threads:
            self._queue.put(None)
        if wait:
            for thread in threads:
                thread.join()
        if self.ledger is not None:
            self.ledger.close()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until no job is queued or running (True) or time is up.

        The graceful-shutdown half of SIGTERM handling: the front end
        stops accepting, then drains so every accepted job reaches a
        durable terminal ledger line before the process exits.
        """
        deadline = None if timeout is None else self._clock() + timeout
        with self._cond:
            while True:
                busy = self._queued > 0 or any(
                    job.status == "running" for job in self._jobs.values())
                if not busy:
                    return True
                if deadline is None:
                    self._cond.wait()
                    continue
                remaining = deadline - self._clock()
                if remaining <= 0:
                    return False
                # An injected chaos clock advances independently of wall
                # time, so a full-length wall wait could oversleep the
                # deadline; bounded slices keep the deadline observable.
                self._cond.wait(remaining if self.chaos is None
                                else min(remaining, 0.05))

    # ------------------------------------------------------------------
    # Degradation bookkeeping
    # ------------------------------------------------------------------
    def _enter_memory_only(self, exc: BaseException) -> None:
        """Ledger IO failed: keep serving from memory, loudly."""
        with self._lock:
            self.ledger_failures += 1
            ledger, self.ledger = self.ledger, None
            self._degraded["ledger"] = (
                f"ledger write failed ({exc}); running memory-only — "
                f"jobs accepted now will NOT survive a restart")
        if ledger is not None:
            ledger.close()
        warnings.warn(
            f"repro serve: job ledger write failed ({exc}); falling back "
            f"to memory-only mode — accepted jobs will not survive a "
            f"restart until the ledger is writable and the server "
            f"restarts", RuntimeWarning, stacklevel=2)

    def _journal(self, op: str, job: JobRecord) -> None:
        """Append one ledger line; IO failure degrades to memory-only."""
        with self._lock:
            ledger = self.ledger
        if ledger is None:
            return
        try:
            getattr(ledger, op)(job)
        except OSError as exc:
            self._enter_memory_only(exc)

    def health(self) -> dict:
        """``/healthz`` body: ok, or degraded with reasons."""
        with self._lock:
            reasons = dict(self._degraded)
        return {"status": "degraded" if reasons else "ok",
                "reasons": reasons}

    # ------------------------------------------------------------------
    # Traces
    # ------------------------------------------------------------------
    def upload(self, data: bytes) -> dict:
        """Persist an uploaded trace body; returns its reference.

        Content-addressed: the same bytes always land at (and return)
        the same ``upload:<sha256>`` reference, written atomically so a
        concurrent identical upload or a crash mid-write can never leave
        a torn file behind.
        """
        if not data:
            raise SchemaError("empty trace upload")
        digest = hashlib.sha256(data).hexdigest()
        path = self.uploads_dir / f"{digest}.jsonl"
        if not path.exists():
            fs = self._upload_fs
            tmp = self.uploads_dir / (
                f".{digest}.{os.getpid()}.{uuid.uuid4().hex}.tmp")
            try:
                with fs.open(str(tmp), "wb") as handle:
                    handle.write(data)
                    handle.flush()
                    fs.fsync(handle.fileno())
                fs.replace(str(tmp), str(path))
            finally:
                if tmp.exists():
                    try:
                        tmp.unlink()
                    except OSError:
                        pass
        return {"trace": f"{_UPLOAD_PREFIX}{digest}", "digest": digest,
                "bytes": len(data)}

    def register(self, path_text: str) -> dict:
        """Register an on-disk trace path; returns its reference."""
        path = Path(path_text).expanduser()
        if not path.is_file():
            raise SchemaError(f"no such trace file: {path_text}")
        return {"trace": str(path.resolve())}

    def _resolve(self, trace_ref: str) -> str:
        """A trace reference → the path extraction will read."""
        if trace_ref.startswith(_UPLOAD_PREFIX):
            digest = trace_ref[len(_UPLOAD_PREFIX):]
            if not digest or any(c not in "0123456789abcdef" for c in digest):
                raise SchemaError(f"malformed upload reference: {trace_ref}")
            path = self.uploads_dir / f"{digest}.jsonl"
            if not path.is_file():
                raise SchemaError(f"unknown upload: {trace_ref}")
            return str(path)
        path = Path(trace_ref)
        if not path.is_file():
            raise SchemaError(
                f"unknown trace: {trace_ref} (upload it or register a path "
                f"first)")
        return str(path)

    # ------------------------------------------------------------------
    # Jobs
    # ------------------------------------------------------------------
    def _queue_retry_hint(self) -> float:
        """Rough seconds until the queue has room (Retry-After)."""
        per_job = self.timeout if self.timeout else 1.0
        pool = max(1, self.workers)
        return min(60.0, max(1.0, per_job * self._queued / pool))

    def _check_admission(self) -> None:
        """Reject before any expensive work when overloaded (no journal
        line is written for a rejected submission — accepted jobs are
        exactly the journaled ones)."""
        retry = self.breaker.admit()
        if retry is not None:
            raise OverloadError(
                "worker pool circuit breaker is open (repeated worker "
                "crashes); retry later", status=503, retry_after=retry)
        if self.max_queue is not None:
            with self._lock:
                if self._queued >= self.max_queue:
                    self.rejected_queue_full += 1
                    raise OverloadError(
                        f"job queue full ({self.max_queue} waiting)",
                        status=429,
                        retry_after=self._queue_retry_hint())

    def submit(self, trace_ref: str,
               option_fields: Optional[dict] = None) -> JobRecord:
        """Accept an extraction job; returns its (journaled) record.

        If the artifact store already holds a result for this exact
        trace content + resolved options, the job is born ``done`` with
        ``cached: true`` — no extraction runs, and the result endpoint
        serves the stored artifact.

        Raises :class:`OverloadError` (before any digest work and
        before anything is journaled) when the queue is at
        ``max_queue`` or the worker-pool circuit breaker is open.
        """
        self._check_admission()
        option_fields = dict(option_fields or {})
        opts = parse_options(option_fields)
        source = self._resolve(trace_ref)
        try:
            digest = trace_digest(source)
        except OSError as exc:
            raise SchemaError(f"unreadable trace {trace_ref}: {exc}") from None
        key = self.store.key(digest, opts)
        with self._lock:
            if (self.max_queue is not None
                    and self._queued >= self.max_queue):
                # The digest work above runs unlocked; re-check so a
                # racing burst cannot overshoot the bound.
                self.rejected_queue_full += 1
                raise OverloadError(
                    f"job queue full ({self.max_queue} waiting)",
                    status=429, retry_after=self._queue_retry_hint())
            self._seq += 1
            job = JobRecord(id=f"job-{self._seq:06d}", seq=self._seq,
                            trace=trace_ref, source=source, digest=digest,
                            key=key, options=option_fields)
            self._jobs[job.id] = job
            self._journal("submit", job)
            if self.store.get(key) is not None:
                job.status = "done"
                job.cached = True
                self._journal("done", job)
                self._cond.notify_all()
            else:
                job.enqueued_at = self._clock()
                self._queued += 1
                self._queue.put(job.id)
                self.breaker.note_enqueued()
        return job

    def job(self, job_id: str) -> Optional[JobRecord]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[JobRecord]:
        with self._lock:
            return list(self._jobs.values())

    def result(self, job_id: str) -> Optional[str]:
        """The rendered analysis document of a ``done`` job, or None.

        None means "no artifact": the job is not done, or its artifact
        was evicted by store quotas (resubmit the job to regenerate) —
        the HTTP layer distinguishes the two from the job status.
        Degraded (partial) results are served from memory and never
        cached, so a healthier rerun can do better.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.status != "done":
                return None
            doc = self._docs.get(job_id)
        if doc is None:
            doc = self.store.get(job.key)
        if doc is None:
            return None
        return render_document(doc)

    def stats(self) -> dict:
        """Service occupancy and backpressure (``GET /v1/stats``)."""
        with self._lock:
            # Seed the always-present states; rarer ones ("expired")
            # appear only when jobs actually hold them, keeping the
            # steady-state wire shape stable for existing clients.
            counts = {state: 0 for state in
                      ("queued", "running", "done", "failed")}
            for job in self._jobs.values():
                counts[job.status] = counts.get(job.status, 0) + 1
            store = self.store.stats()
            store["write_failures"] = self.store_write_failures
            body = {
                "workers": len(self._threads),
                "queue_depth": self._queued,
                "max_queue": self.max_queue,
                "jobs": counts,
                "recovered": self.recovered,
                "rejected": {
                    "queue_full": self.rejected_queue_full,
                    "breaker": self.breaker.snapshot()["rejected"],
                },
                "shed": {"expired": self.shed_expired},
                "breaker": self.breaker.snapshot(),
                "ledger": {
                    "mode": ("durable" if self.ledger is not None
                             else "memory-only"),
                    "failures": self.ledger_failures,
                },
                "health": self.health(),
                "store": store,
            }
            if self.chaos is not None:
                body["chaos"] = self.chaos.summary()
            return body

    # ------------------------------------------------------------------
    # Worker loop
    # ------------------------------------------------------------------
    def _work(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            with self._lock:
                self._queued = max(0, self._queued - 1)
                job = self._jobs.get(job_id)
                if job is None or job.status != "queued":
                    self._cond.notify_all()
                    continue  # raced by a duplicate wakeup: nothing to do
                if (self.max_queue_age is not None and job.enqueued_at
                        and (self._clock() - job.enqueued_at
                             > self.max_queue_age)):
                    # Stale enough that the client has given up: shed it
                    # at dequeue (cheap) instead of extracting a result
                    # nobody will fetch.
                    job.status = "expired"
                    job.error = (f"expired: waited longer than "
                                 f"{self.max_queue_age:g}s in queue")
                    self.shed_expired += 1
                    self._journal("expire", job)
                    self._cond.notify_all()
                    continue
                job.status = "running"
                option_fields = dict(job.options)
            error = ""
            crashed = False
            result = None
            try:
                if self.chaos is not None:
                    self.chaos.trip("worker.run")
                opts = parse_options(option_fields)
                extractor = BatchExtractor(
                    options=opts, jobs=1, timeout=self.timeout,
                    retries=self.retries, backoff=self.backoff,
                    worker=analyze_one,
                )
                result = extractor.run([job.source]).results[0]
            except ChaosCrash as exc:  # injected worker-pool crash
                error = f"WorkerCrash: {exc}"
                crashed = True
            except Exception as exc:  # scheduler-level failure
                error = f"{type(exc).__name__}: {exc}"
            if result is not None and not result.ok:
                # The scheduler contained a real crash or hang; both
                # mean the pool (not the input) may be sick.
                crashed = (result.error.startswith("WorkerCrash")
                           or result.timed_out)
            if result is not None and result.ok:
                doc = result.summary
                # Artifact first, then the durable "done" line: a crash
                # between the two re-runs the job (idempotent), while
                # the reverse order could journal a result that was
                # never stored.
                if doc.get("degradation", {}).get("degraded"):
                    with self._lock:
                        self._docs[job.id] = doc
                else:
                    try:
                        self.store.put(job.key, doc)
                        with self._lock:
                            # A good write proves the store recovered.
                            self._degraded.pop("artifact-store", None)
                    except OSError as exc:
                        # Quota/ENOSPC: serve the result inline from
                        # memory, uncached, and say so in /healthz.
                        with self._lock:
                            self.store_write_failures += 1
                            self._docs[job.id] = doc
                            self._degraded["artifact-store"] = (
                                f"artifact write failed ({exc}); serving "
                                f"results inline without caching")
            with self._lock:
                if result is not None:
                    job.seconds = result.seconds
                    job.attempts = result.attempts
                    job.timed_out = result.timed_out
                    if result.ok:
                        job.status = "done"
                        self._journal("done", job)
                    else:
                        job.status = "failed"
                        job.error = result.error
                        self._journal("fail", job)
                else:
                    job.status = "failed"
                    job.error = error
                    self._journal("fail", job)
                self._cond.notify_all()
            if result is not None and result.ok:
                self.breaker.record_success(job.id)
            else:
                self.breaker.record_failure(job.id, crash=crashed)
