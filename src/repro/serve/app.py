"""The asyncio HTTP front end of ``repro serve``.

Stdlib only: one ``asyncio.start_server`` acceptor, a minimal
HTTP/1.1 request parser (request line + headers + Content-Length body,
``Connection: close`` responses), and a flat router over the service
endpoints.  No framework — the parser is ~40 lines and every byte it
accepts is bounded, which keeps the attack/bug surface inspectable.

Endpoints (see docs/API.md for the full table)::

    GET  /healthz                 liveness + job counts
    GET  /v1/stats                queue + artifact-store occupancy
    POST /v1/traces               upload a trace body -> upload:<digest>
    POST /v1/traces/register      {"path": ...} -> registered reference
    POST /v1/jobs                 {"trace", "options"} -> job record
    GET  /v1/jobs                 all job records
    GET  /v1/jobs/<id>            one job record (poll this)
    GET  /v1/jobs/<id>/result     the analysis document (byte-identical
                                  to `repro analyze --json`)

Blocking service calls (trace digesting, upload persistence) run in the
default executor so one large submission cannot stall the accept loop;
extraction itself never runs on the event loop — it lives in
:class:`~repro.serve.jobs.JobService` worker threads and their
``BatchExtractor`` child processes.

Overload & failure behavior (the full matrix is in
``docs/ROBUSTNESS.md``): every socket read and write carries a deadline
(a stalled client gets ``408`` while a response is still possible, then
the connection closes — slow-loris defense), handlers run under an
optional per-request deadline (``503`` on overrun), a full job queue
answers ``429`` and an open worker-pool circuit breaker ``503`` — both
with ``Retry-After`` — and ``/healthz`` reports ``degraded`` with
reasons when the service is running impaired.  ``run_server`` installs
SIGTERM/SIGINT handlers for graceful drain: stop accepting, let
in-flight jobs reach a durable ledger line (up to ``drain_timeout``),
close the ledger, exit 0.
"""

from __future__ import annotations

import asyncio
import json
import math
import signal
import threading
from typing import Awaitable, Optional, Tuple, TypeVar

from repro.serve.jobs import JobService, OverloadError
from repro.serve.schemas import (
    SchemaError,
    parse_job_request,
    parse_register_request,
)

#: Largest accepted request body (uploads): 1 GiB.
MAX_BODY_BYTES = 1 << 30
#: Largest accepted request line + header block.
MAX_HEAD_BYTES = 1 << 16

#: Default per-connection socket read/write deadline (seconds).
DEFAULT_IO_TIMEOUT = 30.0

_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 408: "Request Timeout",
            409: "Conflict", 410: "Gone", 413: "Payload Too Large",
            429: "Too Many Requests", 500: "Internal Server Error",
            503: "Service Unavailable"}

_T = TypeVar("_T")


class HttpError(Exception):
    """Terminate request handling with this status + message body.

    ``retry_after`` (seconds) adds a ``Retry-After`` header — set for
    backpressure statuses (429/503) so clients can pace themselves.
    """

    def __init__(self, status: int, message: str,
                 retry_after: Optional[float] = None):
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


class ExtractionApp:
    """Routes HTTP requests onto a :class:`JobService`.

    ``read_timeout``/``write_timeout`` bound every socket operation of a
    connection (None disables — only for tests that need a stalled
    server); ``handler_timeout`` bounds request handling after the
    request is fully read (None = no handler deadline).
    """

    def __init__(self, service: JobService,
                 read_timeout: Optional[float] = DEFAULT_IO_TIMEOUT,
                 write_timeout: Optional[float] = DEFAULT_IO_TIMEOUT,
                 handler_timeout: Optional[float] = None):
        self.service = service
        self.read_timeout = read_timeout
        self.write_timeout = write_timeout
        self.handler_timeout = handler_timeout

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _timed_read(self, coro: "Awaitable[_T]", what: str) -> _T:
        """Await a socket read under the connection's read deadline."""
        if self.read_timeout is None:
            return await coro
        try:
            return await asyncio.wait_for(coro, self.read_timeout)
        except asyncio.TimeoutError:
            raise HttpError(
                408, f"timed out reading {what} "
                     f"(limit {self.read_timeout:g}s)") from None

    async def _read_request(self, reader) -> Tuple[str, str, dict, bytes]:
        line = await self._timed_read(reader.readline(), "request line")
        if not line:
            raise ConnectionError("client closed before sending a request")
        parts = line.decode("latin-1").split()
        if len(parts) < 2:
            raise HttpError(400, "malformed request line")
        method, target = parts[0].upper(), parts[1]
        headers = {}
        head_bytes = len(line)
        while True:
            header = await self._timed_read(reader.readline(), "headers")
            head_bytes += len(header)
            if head_bytes > MAX_HEAD_BYTES:
                raise HttpError(400, "header block too large")
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            raise HttpError(400, "malformed Content-Length") from None
        if length < 0:
            raise HttpError(400, "malformed Content-Length")
        if length > MAX_BODY_BYTES:
            raise HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        body = (await self._timed_read(reader.readexactly(length), "body")
                if length else b"")
        return method, target, headers, body

    @staticmethod
    def _response(status: int, body: bytes,
                  content_type: str = "application/json",
                  retry_after: Optional[float] = None) -> bytes:
        reason = _REASONS.get(status, "Unknown")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n")
        if retry_after is not None:
            # Integer seconds per RFC 9110; round up so "0.4s" doesn't
            # invite an immediate, pointless retry.
            head += f"Retry-After: {max(1, math.ceil(retry_after))}\r\n"
        head += "Connection: close\r\n\r\n"
        return head.encode("latin-1") + body

    @staticmethod
    def _json(payload: dict) -> bytes:
        return (json.dumps(payload, indent=1) + "\n").encode("utf-8")

    async def handle(self, reader, writer) -> None:
        """One connection: read a request, route it, respond, close."""
        retry_after: Optional[float] = None
        try:
            try:
                method, target, _headers, body = (
                    await self._read_request(reader))
                if self.handler_timeout is None:
                    status, payload = await self._route(method, target, body)
                else:
                    try:
                        status, payload = await asyncio.wait_for(
                            self._route(method, target, body),
                            self.handler_timeout)
                    except asyncio.TimeoutError:
                        raise HttpError(
                            503,
                            f"handler deadline exceeded "
                            f"({self.handler_timeout:g}s)",
                            retry_after=self.handler_timeout) from None
            except HttpError as exc:
                status = exc.status
                retry_after = exc.retry_after
                payload = self._json({"error": str(exc)})
            except (ConnectionError, asyncio.IncompleteReadError):
                return  # client went away: nothing to answer
            except Exception as exc:  # never let a handler kill the server
                status = 500
                payload = self._json(
                    {"error": f"{type(exc).__name__}: {exc}"})
            writer.write(self._response(status, payload,
                                        retry_after=retry_after))
            try:
                if self.write_timeout is None:
                    await writer.drain()
                else:
                    # A client that stops reading cannot pin the
                    # connection open forever: drop it at the deadline.
                    await asyncio.wait_for(writer.drain(),
                                           self.write_timeout)
            except (asyncio.TimeoutError, ConnectionError):
                pass
        finally:
            try:
                writer.close()
            except Exception:  # repro-lint: disable=EXC001 reason=best-effort close of an already-failed transport; the request outcome was journaled before this point
                pass

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _parse_json_body(self, body: bytes):
        try:
            return json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            raise HttpError(400, "request body is not valid JSON") from None

    async def _route(self, method: str, target: str,
                     body: bytes) -> Tuple[int, bytes]:
        loop = asyncio.get_running_loop()
        path = target.split("?", 1)[0].rstrip("/") or "/"
        try:
            if path == "/healthz" and method == "GET":
                stats = self.service.stats()
                health = stats.get("health", {"status": "ok", "reasons": {}})
                return 200, self._json({
                    "ok": health["status"] == "ok",
                    "status": health["status"],
                    "reasons": health["reasons"],
                    "jobs": stats["jobs"],
                })
            if path == "/v1/stats" and method == "GET":
                return 200, self._json(self.service.stats())
            if path == "/v1/traces" and method == "POST":
                info = await loop.run_in_executor(
                    None, self.service.upload, body)
                return 200, self._json(info)
            if path == "/v1/traces/register" and method == "POST":
                reg_path = parse_register_request(self._parse_json_body(body))
                info = await loop.run_in_executor(
                    None, self.service.register, reg_path)
                return 200, self._json(info)
            if path == "/v1/jobs" and method == "POST":
                trace, options = parse_job_request(self._parse_json_body(body))
                job = await loop.run_in_executor(
                    None, self.service.submit, trace, options)
                return (200 if job.status == "done" else 202,
                        self._json(job.to_dict()))
            if path == "/v1/jobs" and method == "GET":
                return 200, self._json(
                    {"jobs": [j.to_dict() for j in self.service.jobs()]})
            if path.startswith("/v1/jobs/"):
                return await self._route_job(method, path, loop)
        except OverloadError as exc:
            # Admission control / circuit breaker: 429 or 503 with a
            # Retry-After hint; nothing was journaled for this request.
            raise HttpError(exc.status, str(exc),
                            retry_after=exc.retry_after) from None
        except SchemaError as exc:
            raise HttpError(400, str(exc)) from None
        known = {"/healthz", "/v1/stats", "/v1/traces", "/v1/traces/register",
                 "/v1/jobs"}
        if path in known or path.startswith("/v1/jobs/"):
            raise HttpError(405, f"{method} not supported on {path}")
        raise HttpError(404, f"no such endpoint: {path}")

    async def _route_job(self, method: str, path: str,
                         loop) -> Tuple[int, bytes]:
        rest = path[len("/v1/jobs/"):]
        job_id, _, tail = rest.partition("/")
        if method != "GET" or tail not in ("", "result"):
            raise HttpError(405 if tail in ("", "result") else 404,
                            f"{method} not supported on {path}")
        job = self.service.job(job_id)
        if job is None:
            raise HttpError(404, f"no such job: {job_id}")
        if tail == "":
            return 200, self._json(job.to_dict())
        if job.status in ("queued", "running"):
            raise HttpError(409, f"job {job_id} is {job.status}; "
                                 f"poll /v1/jobs/{job_id} until done")
        if job.status == "failed":
            raise HttpError(409, f"job {job_id} failed: {job.error}")
        text = await loop.run_in_executor(None, self.service.result, job_id)
        if text is None:
            raise HttpError(410, f"artifact for job {job_id} was evicted "
                                 f"by store quotas; resubmit the job")
        return 200, text.encode("utf-8")


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
async def _serve_async(app: ExtractionApp, host: str, port: int,
                       ready=None, stop_event=None) -> None:
    server = await asyncio.start_server(app.handle, host, port)
    bound = server.sockets[0].getsockname()[1]
    if ready is not None:
        ready(bound)
    if stop_event is None:
        async with server:
            await server.serve_forever()
        return
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop_event.set)
        except (NotImplementedError, RuntimeError):
            pass  # platform without signal handlers: Ctrl-C still works
    async with server:
        # Returning closes the listening sockets (no new connections);
        # the caller then drains in-flight jobs before process exit.
        await stop_event.wait()


def _announce_stdout(line: str) -> None:
    print(line, flush=True)  # flushed: clients wait for the ready line


def run_server(service: JobService, host: str = "127.0.0.1",
               port: int = 8177, announce=_announce_stdout,
               drain_timeout: Optional[float] = None,
               read_timeout: Optional[float] = DEFAULT_IO_TIMEOUT,
               handler_timeout: Optional[float] = None) -> None:
    """Run the service until interrupted (the ``repro serve`` body).

    ``announce(line)`` is called once with the ready line (carrying the
    actually-bound port — pass ``port=0`` for an ephemeral one), which
    clients and tests can wait for.

    SIGTERM and SIGINT trigger graceful drain: stop accepting, wait up
    to ``drain_timeout`` seconds (None = forever) for queued and
    running jobs to reach a durable terminal ledger line, close the
    ledger, return normally (exit code 0).
    """
    app = ExtractionApp(service, read_timeout=read_timeout,
                        handler_timeout=handler_timeout)
    service.start()

    def ready(bound: int) -> None:
        announce(f"repro serve: listening on http://{host}:{bound} "
                 f"(data: {service.data_dir}, workers: {service.workers})")

    async def main() -> None:
        await _serve_async(app, host, port, ready, asyncio.Event())

    try:
        asyncio.run(main())
        # Reached via SIGTERM/SIGINT (the stop event): the acceptor is
        # closed, nothing new can arrive — drain what was accepted.
        if service.drain(drain_timeout):
            announce("repro serve: drained; shutting down")
        else:
            announce(f"repro serve: drain timed out after "
                     f"{drain_timeout:g}s; shutting down with work "
                     f"still queued (it will resume on restart)")
    except KeyboardInterrupt:
        pass  # no handler installed (non-unix): skip the drain
    finally:
        service.stop()


def start_server_thread(service: JobService, host: str = "127.0.0.1",
                        port: int = 0, **app_kwargs):
    """Start the app in a daemon thread; returns ``(bound_port, stop)``.

    The embedding entry point (tests, notebooks): the caller keeps the
    thread alive, talks HTTP to ``bound_port``, and calls ``stop()`` to
    shut the loop and the service workers down.  ``app_kwargs`` forward
    to :class:`ExtractionApp` (``read_timeout``, ``write_timeout``,
    ``handler_timeout``).
    """
    app = ExtractionApp(service, **app_kwargs)
    service.start()
    started = threading.Event()
    state: dict = {}

    async def main() -> None:
        server = await asyncio.start_server(app.handle, host, port)
        state["port"] = server.sockets[0].getsockname()[1]
        state["loop"] = asyncio.get_running_loop()
        state["stop"] = asyncio.Event()
        started.set()
        async with server:
            await state["stop"].wait()

    def runner() -> None:
        try:
            asyncio.run(main())
        except Exception:  # surface startup failures via the event
            started.set()
            raise

    thread = threading.Thread(target=runner, name="repro-serve-http",
                              daemon=True)
    thread.start()
    started.wait(10.0)
    if "port" not in state:
        raise RuntimeError(f"server failed to start on {host}:{port}")

    def stop() -> None:
        loop: Optional[asyncio.AbstractEventLoop] = state.get("loop")
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(state["stop"].set)
        thread.join(10.0)
        service.stop()

    return state["port"], stop
