"""The asyncio HTTP front end of ``repro serve``.

Stdlib only: one ``asyncio.start_server`` acceptor, a minimal
HTTP/1.1 request parser (request line + headers + Content-Length body,
``Connection: close`` responses), and a flat router over the service
endpoints.  No framework — the parser is ~40 lines and every byte it
accepts is bounded, which keeps the attack/bug surface inspectable.

Endpoints (see docs/API.md for the full table)::

    GET  /healthz                 liveness + job counts
    GET  /v1/stats                queue + artifact-store occupancy
    POST /v1/traces               upload a trace body -> upload:<digest>
    POST /v1/traces/register      {"path": ...} -> registered reference
    POST /v1/jobs                 {"trace", "options"} -> job record
    GET  /v1/jobs                 all job records
    GET  /v1/jobs/<id>            one job record (poll this)
    GET  /v1/jobs/<id>/result     the analysis document (byte-identical
                                  to `repro analyze --json`)

Blocking service calls (trace digesting, upload persistence) run in the
default executor so one large submission cannot stall the accept loop;
extraction itself never runs on the event loop — it lives in
:class:`~repro.serve.jobs.JobService` worker threads and their
``BatchExtractor`` child processes.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Optional, Tuple

from repro.serve.jobs import JobService
from repro.serve.schemas import (
    SchemaError,
    parse_job_request,
    parse_register_request,
)

#: Largest accepted request body (uploads): 1 GiB.
MAX_BODY_BYTES = 1 << 30
#: Largest accepted request line + header block.
MAX_HEAD_BYTES = 1 << 16

_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 409: "Conflict", 410: "Gone",
            413: "Payload Too Large", 500: "Internal Server Error"}


class HttpError(Exception):
    """Terminate request handling with this status + message body."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class ExtractionApp:
    """Routes HTTP requests onto a :class:`JobService`."""

    def __init__(self, service: JobService):
        self.service = service

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _read_request(self, reader) -> Tuple[str, str, dict, bytes]:
        line = await reader.readline()
        if not line:
            raise ConnectionError("client closed before sending a request")
        parts = line.decode("latin-1").split()
        if len(parts) < 2:
            raise HttpError(400, "malformed request line")
        method, target = parts[0].upper(), parts[1]
        headers = {}
        head_bytes = len(line)
        while True:
            header = await reader.readline()
            head_bytes += len(header)
            if head_bytes > MAX_HEAD_BYTES:
                raise HttpError(400, "header block too large")
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            raise HttpError(400, "malformed Content-Length") from None
        if length < 0:
            raise HttpError(400, "malformed Content-Length")
        if length > MAX_BODY_BYTES:
            raise HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    @staticmethod
    def _response(status: int, body: bytes,
                  content_type: str = "application/json") -> bytes:
        reason = _REASONS.get(status, "Unknown")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n")
        return head.encode("latin-1") + body

    @staticmethod
    def _json(payload: dict) -> bytes:
        return (json.dumps(payload, indent=1) + "\n").encode("utf-8")

    async def handle(self, reader, writer) -> None:
        """One connection: read a request, route it, respond, close."""
        try:
            try:
                method, target, _headers, body = (
                    await self._read_request(reader))
                status, payload = await self._route(method, target, body)
            except HttpError as exc:
                status = exc.status
                payload = self._json({"error": str(exc)})
            except (ConnectionError, asyncio.IncompleteReadError):
                return  # client went away: nothing to answer
            except Exception as exc:  # never let a handler kill the server
                status = 500
                payload = self._json(
                    {"error": f"{type(exc).__name__}: {exc}"})
            writer.write(self._response(status, payload))
            await writer.drain()
        finally:
            try:
                writer.close()
            except Exception:
                pass

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _parse_json_body(self, body: bytes):
        try:
            return json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            raise HttpError(400, "request body is not valid JSON") from None

    async def _route(self, method: str, target: str,
                     body: bytes) -> Tuple[int, bytes]:
        loop = asyncio.get_running_loop()
        path = target.split("?", 1)[0].rstrip("/") or "/"
        try:
            if path == "/healthz" and method == "GET":
                stats = self.service.stats()
                return 200, self._json({"ok": True, "jobs": stats["jobs"]})
            if path == "/v1/stats" and method == "GET":
                return 200, self._json(self.service.stats())
            if path == "/v1/traces" and method == "POST":
                info = await loop.run_in_executor(
                    None, self.service.upload, body)
                return 200, self._json(info)
            if path == "/v1/traces/register" and method == "POST":
                reg_path = parse_register_request(self._parse_json_body(body))
                info = await loop.run_in_executor(
                    None, self.service.register, reg_path)
                return 200, self._json(info)
            if path == "/v1/jobs" and method == "POST":
                trace, options = parse_job_request(self._parse_json_body(body))
                job = await loop.run_in_executor(
                    None, self.service.submit, trace, options)
                return (200 if job.status == "done" else 202,
                        self._json(job.to_dict()))
            if path == "/v1/jobs" and method == "GET":
                return 200, self._json(
                    {"jobs": [j.to_dict() for j in self.service.jobs()]})
            if path.startswith("/v1/jobs/"):
                return await self._route_job(method, path, loop)
        except SchemaError as exc:
            raise HttpError(400, str(exc)) from None
        known = {"/healthz", "/v1/stats", "/v1/traces", "/v1/traces/register",
                 "/v1/jobs"}
        if path in known or path.startswith("/v1/jobs/"):
            raise HttpError(405, f"{method} not supported on {path}")
        raise HttpError(404, f"no such endpoint: {path}")

    async def _route_job(self, method: str, path: str,
                         loop) -> Tuple[int, bytes]:
        rest = path[len("/v1/jobs/"):]
        job_id, _, tail = rest.partition("/")
        if method != "GET" or tail not in ("", "result"):
            raise HttpError(405 if tail in ("", "result") else 404,
                            f"{method} not supported on {path}")
        job = self.service.job(job_id)
        if job is None:
            raise HttpError(404, f"no such job: {job_id}")
        if tail == "":
            return 200, self._json(job.to_dict())
        if job.status in ("queued", "running"):
            raise HttpError(409, f"job {job_id} is {job.status}; "
                                 f"poll /v1/jobs/{job_id} until done")
        if job.status == "failed":
            raise HttpError(409, f"job {job_id} failed: {job.error}")
        text = await loop.run_in_executor(None, self.service.result, job_id)
        if text is None:
            raise HttpError(410, f"artifact for job {job_id} was evicted "
                                 f"by store quotas; resubmit the job")
        return 200, text.encode("utf-8")


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
async def _serve_async(app: ExtractionApp, host: str, port: int,
                       ready=None) -> None:
    server = await asyncio.start_server(app.handle, host, port)
    bound = server.sockets[0].getsockname()[1]
    if ready is not None:
        ready(bound)
    async with server:
        await server.serve_forever()


def _announce_stdout(line: str) -> None:
    print(line, flush=True)  # flushed: clients wait for the ready line


def run_server(service: JobService, host: str = "127.0.0.1",
               port: int = 8177, announce=_announce_stdout) -> None:
    """Run the service until interrupted (the ``repro serve`` body).

    ``announce(line)`` is called once with the ready line (carrying the
    actually-bound port — pass ``port=0`` for an ephemeral one), which
    clients and tests can wait for.
    """
    app = ExtractionApp(service)
    service.start()

    def ready(bound: int) -> None:
        announce(f"repro serve: listening on http://{host}:{bound} "
                 f"(data: {service.data_dir}, workers: {service.workers})")

    try:
        asyncio.run(_serve_async(app, host, port, ready))
    except KeyboardInterrupt:
        pass
    finally:
        service.stop()


def start_server_thread(service: JobService, host: str = "127.0.0.1",
                        port: int = 0):
    """Start the app in a daemon thread; returns ``(bound_port, stop)``.

    The embedding entry point (tests, notebooks): the caller keeps the
    thread alive, talks HTTP to ``bound_port``, and calls ``stop()`` to
    shut the loop and the service workers down.
    """
    app = ExtractionApp(service)
    service.start()
    started = threading.Event()
    state: dict = {}

    async def main() -> None:
        server = await asyncio.start_server(app.handle, host, port)
        state["port"] = server.sockets[0].getsockname()[1]
        state["loop"] = asyncio.get_running_loop()
        state["stop"] = asyncio.Event()
        started.set()
        async with server:
            await state["stop"].wait()

    def runner() -> None:
        try:
            asyncio.run(main())
        except Exception:  # surface startup failures via the event
            started.set()
            raise

    thread = threading.Thread(target=runner, name="repro-serve-http",
                              daemon=True)
    thread.start()
    started.wait(10.0)
    if "port" not in state:
        raise RuntimeError(f"server failed to start on {host}:{port}")

    def stop() -> None:
        loop: Optional[asyncio.AbstractEventLoop] = state.get("loop")
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(state["stop"].set)
        thread.join(10.0)
        service.stop()

    return state["port"], stop
