"""A retrying stdlib HTTP client for the extraction service.

:class:`ServeClient` is the well-behaved counterpart of the server's
backpressure: it retries exactly the responses the server emits to
shed load (``429`` queue-full, ``503`` breaker-open, ``408`` read
deadline) plus transport-level failures (connection refused/reset — a
server mid-restart), with **capped exponential backoff and full
jitter**, and it honors ``Retry-After`` when the server provides one.
Everything else (400/404/409/410, a failed job) raises
:class:`ClientError` immediately — retrying a validation error only
adds load.

Full jitter (delay drawn uniformly from ``[0, min(cap, base·2^n)]``)
rather than raw exponential: when a breaker opens, every blocked client
sees the same event, and un-jittered backoff would march them back in
synchronized waves that re-trip it.  ``Retry-After`` acts as a floor on
the drawn delay, capped at ``max_backoff`` so a long server cooldown
cannot stall a client loop beyond its own budget.

Used by ``repro submit`` (the CLI verb) and the chaos end-to-end tests;
stdlib-only (``urllib``), every request carries an explicit socket
timeout (lint rule CONC005 pins this).
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Optional, Tuple

#: Statuses worth retrying: the server's explicit backpressure answers.
RETRY_STATUSES = (408, 429, 503)


class ClientError(RuntimeError):
    """A request failed for good (non-retryable, or retries exhausted).

    ``status`` is the final HTTP status (0 for transport failures);
    ``body`` the final response body text, when there was one.
    """

    def __init__(self, message: str, status: int = 0, body: str = ""):
        super().__init__(message)
        self.status = status
        self.body = body


class ServeClient:
    """Talk to a ``repro serve`` endpoint with retry + backoff.

    ``retries`` bounds the re-attempts per request (0 = single shot);
    ``backoff`` is the base delay, doubling per attempt and capped at
    ``max_backoff`` before jitter.  ``seed`` makes the jitter sequence
    reproducible (tests); the default draws a fresh stream.
    """

    def __init__(self, base_url: str, *,
                 timeout: float = 30.0,
                 retries: int = 5,
                 backoff: float = 0.25,
                 max_backoff: float = 8.0,
                 seed: Optional[int] = None):
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)
        self.retries = max(0, int(retries))
        self.backoff = max(0.0, float(backoff))
        self.max_backoff = max(self.backoff, float(max_backoff))
        self._rng = random.Random(seed)
        #: Delays actually slept (seconds), for tests and diagnostics.
        self.sleeps: list = []

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _once(self, method: str, path: str, data: Optional[bytes],
              content_type: str) -> Tuple[int, bytes, dict]:
        req = urllib.request.Request(
            self.base_url + path, data=data, method=method,
            headers={"Content-Type": content_type} if data else {})
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return resp.status, resp.read(), dict(resp.headers)
        except urllib.error.HTTPError as exc:
            # Non-2xx with a response: the server had its say.
            body = exc.read()
            return exc.code, body, dict(exc.headers or {})

    def _delay(self, attempt: int, retry_after: Optional[float]) -> float:
        cap = min(self.max_backoff, self.backoff * (2 ** attempt))
        delay = self._rng.uniform(0.0, cap)  # full jitter
        if retry_after is not None:
            # Honor the server's pacing as a floor, within our budget.
            delay = max(delay, min(retry_after, self.max_backoff))
        return delay

    @staticmethod
    def _retry_after(headers: dict) -> Optional[float]:
        for name, value in headers.items():
            if name.lower() == "retry-after":
                try:
                    return max(0.0, float(value))
                except (TypeError, ValueError):
                    return None
        return None

    def request(self, method: str, path: str, data: Optional[bytes] = None,
                content_type: str = "application/json") -> Tuple[int, bytes]:
        """One logical request, retried through transient failures."""
        last_error = ""
        last_status = 0
        last_body = b""
        for attempt in range(self.retries + 1):
            retry_after: Optional[float] = None
            try:
                status, body, headers = self._once(method, path, data,
                                                   content_type)
            except (urllib.error.URLError, ConnectionError, OSError) as exc:
                # Transport failure: server restarting or unreachable.
                last_error = f"{type(exc).__name__}: {exc}"
                last_status, last_body = 0, b""
            else:
                if status not in RETRY_STATUSES:
                    return status, body
                retry_after = self._retry_after(headers)
                last_error = (f"HTTP {status}: "
                              f"{body.decode('utf-8', 'replace').strip()}")
                last_status, last_body = status, body
            if attempt < self.retries:
                delay = self._delay(attempt, retry_after)
                self.sleeps.append(delay)
                if delay > 0:
                    time.sleep(delay)
        raise ClientError(
            f"{method} {path} failed after {self.retries + 1} attempt(s): "
            f"{last_error}", status=last_status,
            body=last_body.decode("utf-8", "replace"))

    def _json(self, method: str, path: str,
              payload: Optional[dict] = None) -> dict:
        data = (None if payload is None
                else json.dumps(payload).encode("utf-8"))
        status, body = self.request(method, path, data)
        try:
            doc = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            raise ClientError(f"{method} {path}: unparseable response body",
                              status=status,
                              body=body.decode("utf-8", "replace")) from None
        if status >= 400:
            raise ClientError(
                f"{method} {path} -> HTTP {status}: "
                f"{doc.get('error', body.decode('utf-8', 'replace'))}",
                status=status, body=body.decode("utf-8", "replace"))
        return doc

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        return self._json("GET", "/healthz")

    def stats(self) -> dict:
        return self._json("GET", "/v1/stats")

    def upload(self, data: bytes) -> dict:
        status, body = self.request("POST", "/v1/traces", data,
                                    content_type="application/octet-stream")
        doc = json.loads(body.decode("utf-8"))
        if status >= 400:
            raise ClientError(f"upload -> HTTP {status}: "
                              f"{doc.get('error', '')}", status=status)
        return doc

    def register(self, path: str) -> dict:
        return self._json("POST", "/v1/traces/register", {"path": path})

    def submit(self, trace_ref: str, options: Optional[dict] = None) -> dict:
        payload: dict = {"trace": trace_ref}
        if options:
            payload["options"] = options
        return self._json("POST", "/v1/jobs", payload)

    def job(self, job_id: str) -> dict:
        return self._json("GET", f"/v1/jobs/{job_id}")

    def wait(self, job_id: str, deadline: float = 120.0,
             poll: float = 0.2) -> dict:
        """Poll until the job reaches a terminal state (or raise)."""
        end = time.monotonic() + deadline  # repro-lint: disable=DET001 reason=client-side polling deadline; wall time never reaches extraction results
        while True:
            record = self.job(job_id)
            if record["status"] in ("done", "failed", "expired"):
                return record
            if time.monotonic() >= end:  # repro-lint: disable=DET001 reason=client-side polling deadline; wall time never reaches extraction results
                raise ClientError(
                    f"job {job_id} still {record['status']} after "
                    f"{deadline:g}s")
            time.sleep(poll)

    def result(self, job_id: str) -> str:
        """The analysis document text of a ``done`` job."""
        status, body = self.request("GET", f"/v1/jobs/{job_id}/result")
        if status >= 400:
            try:
                message = json.loads(body.decode("utf-8")).get("error", "")
            except (ValueError, UnicodeDecodeError):
                message = body.decode("utf-8", "replace")
            raise ClientError(f"result for {job_id} -> HTTP {status}: "
                              f"{message}", status=status)
        return body.decode("utf-8")

    def analyze(self, trace_bytes: bytes, options: Optional[dict] = None,
                deadline: float = 120.0) -> str:
        """Upload + submit + wait + fetch, end to end.

        Returns the document text (byte-identical to ``repro analyze
        --json`` for the same trace and options); raises
        :class:`ClientError` if the job fails or expires.
        """
        ref = self.upload(trace_bytes)["trace"]
        record = self.submit(ref, options)
        if record["status"] not in ("done", "failed", "expired"):
            record = self.wait(record["job"], deadline=deadline)
        if record["status"] != "done":
            raise ClientError(f"job {record['job']} {record['status']}: "
                              f"{record.get('error', '')}")
        return self.result(record["job"])
