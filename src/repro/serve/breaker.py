"""Circuit breaker around the serve worker pool.

A worker crash (the extraction child dying — segfault, OOM kill, or an
injected :class:`~repro.chaos.plan.ChaosCrash`) is contained per job:
the job fails, the server survives.  But *repeated* crashes across
distinct jobs mean the pool itself is sick (a poisoned shared library,
a full ``/tmp``, a broken accelerator), and blindly accepting more work
just burns the queue through the same wall.  The breaker watches for
that pattern and fails fast instead:

``closed``
    Normal service.  Consecutive crash count rises only when a *new*
    job crashes (retries of one job count once); any orderly outcome —
    success or a plain extraction failure — resets it.
``open``
    Entered after ``threshold`` consecutive distinct-job crashes.
    Submissions are rejected immediately (the HTTP layer maps this to
    ``503`` + ``Retry-After``) until ``cooldown`` seconds pass.
``half_open``
    After the cooldown, exactly one probe job is admitted.  If it
    completes in an orderly way the breaker closes; if it crashes the
    breaker re-opens for another cooldown.

The probe slot is claimed at *enqueue* time (:meth:`note_enqueued`),
not at :meth:`admit` — an admit that later fails schema validation must
not consume the probe.  ``clock`` is injectable so chaos plans can skew
time through the cooldown.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half_open"


class CircuitBreaker:
    """Crash-pattern breaker; all methods are thread-safe."""

    def __init__(self, threshold: int = 5, cooldown: float = 30.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if threshold < 1:
            raise ValueError("breaker threshold must be >= 1")
        if cooldown <= 0:
            raise ValueError("breaker cooldown must be > 0")
        self.threshold = int(threshold)
        self.cooldown = float(cooldown)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = STATE_CLOSED
        self._consecutive = 0
        self._last_crashed_job: Optional[str] = None
        self._opened_at = 0.0
        self._probe_inflight = False
        self.opened = 0    #: total open transitions (incl. re-opens)
        self.rejected = 0  #: submissions fast-failed by the breaker

    # ------------------------------------------------------------------
    def _refresh(self) -> None:
        """Advance open → half_open once the cooldown elapses (lock held)."""
        if (self._state == STATE_OPEN
                and self._clock() - self._opened_at >= self.cooldown):
            self._state = STATE_HALF_OPEN
            self._probe_inflight = False

    def state(self) -> str:
        with self._lock:
            self._refresh()
            return self._state

    # ------------------------------------------------------------------
    def admit(self) -> Optional[float]:
        """None = admitted; a float = rejected, retry after that many s."""
        with self._lock:
            self._refresh()
            if self._state == STATE_CLOSED:
                return None
            if self._state == STATE_HALF_OPEN and not self._probe_inflight:
                return None  # the probe; claimed at note_enqueued()
            self.rejected += 1
            if self._state == STATE_OPEN:
                remaining = self.cooldown - (self._clock() - self._opened_at)
                return max(0.1, remaining)
            return self.cooldown  # half-open, probe already in flight

    def note_enqueued(self) -> None:
        """An admitted job actually entered the queue (claims the probe)."""
        with self._lock:
            self._refresh()
            if self._state == STATE_HALF_OPEN:
                self._probe_inflight = True

    # ------------------------------------------------------------------
    def record_success(self, job_id: str) -> None:
        with self._lock:
            self._consecutive = 0
            self._last_crashed_job = None
            self._state = STATE_CLOSED
            self._probe_inflight = False

    def record_failure(self, job_id: str, crash: bool) -> None:
        """An orderly failure heals like a success; a crash counts."""
        with self._lock:
            self._refresh()
            if not crash:
                # The pool executed the job to an orderly verdict — it
                # is healthy even though the job itself failed.
                self._consecutive = 0
                self._last_crashed_job = None
                self._state = STATE_CLOSED
                self._probe_inflight = False
                return
            if job_id != self._last_crashed_job:
                self._consecutive += 1
                self._last_crashed_job = job_id
            if (self._state == STATE_HALF_OPEN
                    or self._consecutive >= self.threshold):
                self._state = STATE_OPEN
                self._opened_at = self._clock()
                self._probe_inflight = False
                self._consecutive = 0
                self._last_crashed_job = None
                self.opened += 1

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Breaker counters for ``/v1/stats``."""
        with self._lock:
            self._refresh()
            return {
                "state": self._state,
                "threshold": self.threshold,
                "cooldown": self.cooldown,
                "consecutive_crashes": self._consecutive,
                "opened": self.opened,
                "rejected": self.rejected,
            }
