"""Extraction-as-a-service: the ``repro serve`` HTTP front end.

Everything downstream of extraction — visualization, diffing, batch
campaigns — can run against one standing endpoint instead of shelling
into the CLI per trace (ROADMAP item 3, the "millions of users" gap).
The package is stdlib-only (``asyncio`` + hand-rolled HTTP/1.1, no
framework) and splits into:

* :mod:`repro.serve.schemas` — request parsing/validation and response
  shaping for every endpoint;
* :mod:`repro.serve.store` — :class:`ArtifactStore`, the content-keyed
  :class:`~repro.batch.StructureCache` promoted to a sharded,
  quota-aware artifact store holding full analysis documents;
* :mod:`repro.serve.worker` — :func:`analyze_one`, the job body run
  inside :class:`~repro.batch.BatchExtractor` worker processes;
* :mod:`repro.serve.jobs` — the crash-safe job ledger (on
  :class:`~repro.resilience.journal.JournalWriter`) and
  :class:`JobService`, the queue + worker threads + artifact store
  behind the endpoints;
* :mod:`repro.serve.app` — the asyncio HTTP server itself, with
  per-connection read/write deadlines, per-request handler deadlines,
  and graceful SIGTERM/SIGINT drain;
* :mod:`repro.serve.breaker` — :class:`CircuitBreaker` around the
  worker pool (repeated worker crashes open it; 503 + Retry-After);
* :mod:`repro.serve.client` — :class:`ServeClient`, the retrying
  stdlib HTTP client behind ``repro submit`` (capped exponential
  backoff with full jitter, honors ``Retry-After``).

Job results are byte-identical to ``repro analyze --json`` for the same
trace and options (both render :func:`repro.report.analysis_document`),
and identical trace+options submissions are served from the artifact
store without re-extraction.  The ledger makes the queue SIGKILL-safe:
a restarted server re-runs exactly the journaled jobs that had not
completed.  See ``docs/API.md`` ("The extraction service") for the
endpoint table, job lifecycle, and store layout.
"""

from repro.serve.app import ExtractionApp, run_server, start_server_thread
from repro.serve.breaker import CircuitBreaker
from repro.serve.client import ClientError, ServeClient
from repro.serve.jobs import (
    JobLedger,
    JobRecord,
    JobService,
    OverloadError,
    read_job_ledger,
)
from repro.serve.schemas import JOB_STATES, SchemaError, parse_options
from repro.serve.store import ArtifactStore
from repro.serve.worker import analyze_one

__all__ = [
    "ArtifactStore",
    "CircuitBreaker",
    "ClientError",
    "ExtractionApp",
    "JOB_STATES",
    "JobLedger",
    "JobRecord",
    "JobService",
    "OverloadError",
    "SchemaError",
    "ServeClient",
    "analyze_one",
    "parse_options",
    "read_job_ledger",
    "run_server",
    "start_server_thread",
]
