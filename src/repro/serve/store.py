"""The service artifact store: a sharded, quota-aware structure cache.

:class:`ArtifactStore` is the content-keyed
:class:`~repro.batch.StructureCache` promoted for service duty.  The
key stays ``sha256(trace digest + resolved result options)``, but:

* entries hold **full analysis documents** (what ``repro analyze
  --json`` prints), not compact batch summaries, and are serialized
  with their original key order so a fetched artifact is byte-identical
  to the CLI output for the same trace and options;
* entries are **sharded** into subdirectories by the first
  ``shard_prefix`` hex characters of the key (default 2 → up to 256
  shards), bounding directory fan-in under service traffic;
* each shard can carry its own byte quota (``max_shard_bytes``) on top
  of the global ``max_entries``/``max_bytes`` caps, so one hot key
  prefix cannot crowd out the rest of the store.

Everything else — atomic fsync'd writes, LRU-by-mtime pruning,
tolerance of concurrent get/put/prune across threads and processes —
is inherited.  ``repro cache --stats/--prune`` operates on artifact
stores unchanged (its scans cover flat and sharded layouts alike).
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.batch import StructureCache


class ArtifactStore(StructureCache):
    """Sharded, quota-aware cache of full analysis documents."""

    #: Documents must round-trip byte-identically to the CLI rendering,
    #: so entries keep their payload key order instead of sorting.
    _sort_keys = False

    def __init__(self, directory: Union[str, Path],
                 max_entries: Optional[int] = None,
                 max_bytes: Optional[int] = None,
                 shard_prefix: int = 2,
                 max_shard_bytes: Optional[int] = None,
                 fs=None):
        super().__init__(directory, max_entries=max_entries,
                         max_bytes=max_bytes, shard_prefix=shard_prefix,
                         max_shard_bytes=max_shard_bytes, fs=fs)
