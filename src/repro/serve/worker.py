"""The job body ``repro serve`` runs per extraction job.

:func:`analyze_one` is the service twin of
:func:`repro.batch._extract_one`: same contract (module-level, picklable
arguments, never raises, returns ``(ok, payload, error, seconds)``), so
it rides the existing :class:`~repro.batch.BatchExtractor` scheduler and
inherits its per-job timeout, retries, and crash containment.  The
payload is the full :func:`repro.report.analysis_document` — the same
dict ``repro analyze --json`` prints — rather than the compact batch
summary, because service clients fetch complete results, not campaign
bookkeeping rows.
"""

from __future__ import annotations

import time as _time

from repro.core.pipeline import (
    PipelineOptions,
    PipelineStats,
    extract_logical_structure,
)
from repro.report import analysis_document
from repro.trace.model import Trace
from repro.trace.source import open_trace


def analyze_one(source, option_fields: dict):
    """Extract one trace into a full analysis document; never raise.

    Runs in :class:`~repro.batch.BatchExtractor` worker processes (hence
    module-level with picklable arguments) and serially.
    """
    t0 = _time.perf_counter()  # repro-lint: disable=DET001 reason=job timing telemetry, never keyed or cached
    try:
        opts = PipelineOptions(**option_fields)
        trace = (source if isinstance(source, Trace)
                 else open_trace(source, ingest=opts.ingest).trace())
        stats = PipelineStats()
        structure = extract_logical_structure(trace, opts, stats=stats)
        doc = analysis_document(structure, stats)
        return True, doc, "", _time.perf_counter() - t0  # repro-lint: disable=DET001 reason=job timing telemetry, never keyed or cached
    except Exception as exc:  # worker isolation: report, don't propagate
        error = f"{type(exc).__name__}: {exc}"
        return False, {}, error, _time.perf_counter() - t0  # repro-lint: disable=DET001 reason=job timing telemetry, never keyed or cached


def render_document(doc: dict) -> str:
    """The canonical wire/disk rendering of an analysis document.

    Byte-identical to ``repro analyze --json`` stdout (``json.dumps``
    with ``indent=1`` plus the trailing newline ``print`` adds), so a
    ``curl`` of a job result diffs clean against the CLI.
    """
    import json

    return json.dumps(doc, indent=1) + "\n"
