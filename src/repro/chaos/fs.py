"""Filesystem ops seam: real passthrough, or chaos-instrumented.

Durability-critical writers (:class:`repro.resilience.journal.JournalWriter`,
:class:`repro.batch.StructureCache`, the serve upload path) take an
``fs=`` object exposing exactly the four operations their crash-safety
story is built on — ``open``, ``fsync``, ``replace``, ``unlink``.  The
default :data:`REAL_FS` delegates straight to the stdlib and costs one
attribute lookup per call; a :class:`ChaosFs` bound to a
:class:`~repro.chaos.plan.FaultPlan` consults a fault site before each
operation, so a test can schedule ``ENOSPC`` on the third fsync of the
ledger, or a torn write in the middle of an artifact-store entry, and
then prove the recovery path — instead of hoping the disk cooperates.

Site names are ``{scope}.{op}``: a ``ChaosFs(plan, "ledger")`` consults
``ledger.open``, ``ledger.write``, ``ledger.fsync``, ``ledger.replace``
and ``ledger.unlink``.  The ``write`` site is consulted per
``file.write()`` call on handles opened through the seam; a ``torn``
fault there writes a prefix of the buffer and raises ``EIO`` — the
half-written bytes stay on disk for the reader's repair path to find.
"""

from __future__ import annotations

import errno
import os
from typing import IO, TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.chaos.plan import FaultPlan


class FsOps:
    """Straight-through filesystem operations (the default seam)."""

    def open(self, path: str, mode: str = "rb") -> IO[Any]:
        return open(path, mode)

    def fsync(self, fd: int) -> None:
        os.fsync(fd)

    def replace(self, src: str, dst: str) -> None:
        # The seam exists so callers can order fsync-then-replace through
        # one object; the ordering lives at the call site, not here.
        os.replace(src, dst)  # repro-lint: disable=CONC001 reason=passthrough seam; durability ordering is enforced at the call sites that use this ops object

    def unlink(self, path: str) -> None:
        os.unlink(path)


#: Shared passthrough instance — the default for every ``fs=`` parameter.
REAL_FS = FsOps()


class _ChaosFile:
    """File handle wrapper that injects write faults.

    Consults ``{scope}.write`` before every ``write()``.  A ``torn``
    fault writes roughly half the buffer (and flushes it, so the torn
    bytes actually reach the OS) before raising ``EIO``; ``enospc`` and
    ``eio`` faults raise before any byte is written.  Everything else
    (flush, fileno, close, context-manager use) delegates untouched.
    """

    def __init__(self, fh: IO[Any], plan: "FaultPlan", scope: str) -> None:
        self._fh = fh
        self._plan = plan
        self._scope = scope

    def write(self, data: Any) -> int:
        spec = self._plan.trip(self._scope + ".write")
        if spec is not None and spec.kind == "torn":
            prefix = data[: max(1, len(data) // 2)] if len(data) else data
            self._fh.write(prefix)
            self._fh.flush()
            raise OSError(
                errno.EIO,
                f"chaos: torn write at {self._scope}.write "
                f"({len(prefix)}/{len(data)} bytes reached the OS)")
        return self._fh.write(data)

    def __enter__(self) -> "_ChaosFile":
        return self

    def __exit__(self, *exc: Any) -> None:
        self._fh.close()

    def __getattr__(self, name: str) -> Any:
        return getattr(self._fh, name)


class ChaosFs(FsOps):
    """An :class:`FsOps` that consults a fault plan before each op."""

    def __init__(self, plan: "FaultPlan", scope: str) -> None:
        self.plan = plan
        self.scope = scope

    def open(self, path: str, mode: str = "rb") -> IO[Any]:
        self.plan.trip(self.scope + ".open")
        fh = open(path, mode)
        try:
            if any(flag in mode for flag in ("w", "a", "+", "x")):
                return _ChaosFile(fh, self.plan, self.scope)  # type: ignore[return-value]
            return fh
        except BaseException:
            # Ownership only transfers on successful return: anything
            # raised between open and return must not leak the handle.
            fh.close()
            raise

    def fsync(self, fd: int) -> None:
        spec = self.plan.trip(self.scope + ".fsync")
        if spec is not None and spec.kind == "torn":
            # A torn fsync is data that never became durable: surface it
            # as the IO error the caller's recovery path must absorb.
            raise OSError(errno.EIO,
                          f"chaos: fsync lost at {self.scope}.fsync")
        os.fsync(fd)

    def replace(self, src: str, dst: str) -> None:
        spec = self.plan.trip(self.scope + ".replace")
        if spec is not None and spec.kind == "torn":
            raise OSError(errno.EIO,
                          f"chaos: replace lost at {self.scope}.replace")
        super().replace(src, dst)

    def unlink(self, path: str) -> None:
        self.plan.trip(self.scope + ".unlink")
        os.unlink(path)
