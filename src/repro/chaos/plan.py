"""Deterministic, seedable fault plans: *what* fails, *where*, *when*.

The robustness guarantees of the service stack — no torn ledger
entries, exactly-once job completion across ``kill -9``, graceful
degradation on a full disk — are only worth what their tests can
prove.  A :class:`FaultPlan` turns "hope the disk fills at the right
instant" into a schedule: each :class:`FaultSpec` names a **site** (a
dotted string like ``"store.fsync"`` that a component consults at its
fault point), a fault **kind**, and a firing rule (explicit call
numbers, a seeded rate, or always).  Components reach fault points
through explicit seams — the ``fs=`` ops object of
:class:`repro.chaos.fs.ChaosFs`, the ``chaos=`` plan of
:class:`repro.serve.jobs.JobService` — and with no plan installed the
seams are pure passthrough.

Fault kinds:

``enospc`` / ``eio``
    Raise ``OSError`` with the matching ``errno`` at the site.
``torn``
    For write sites: write a prefix of the payload, then raise ``EIO``
    (a torn write).  At ``fsync``/``replace`` sites it degenerates to
    ``eio`` — data that was never made durable.
``latency``
    Sleep ``delay`` seconds at the site, then continue.
``crash``
    Raise :class:`ChaosCrash` — the serve worker loop treats it as a
    worker-process crash (circuit-breaker food).
``skew``
    Add ``skew`` seconds to the plan's :meth:`FaultPlan.clock` — every
    consumer that takes time from the plan (queue-age expiry, breaker
    cooldowns) sees the jump.

Everything is deterministic given the spec list and ``seed``: explicit
``at=`` schedules do not consult the RNG at all, and rate-based firing
uses one seeded ``random.Random``.  The plan records every fired fault
in :attr:`FaultPlan.events` so tests can assert exactly which faults
actually landed.
"""

from __future__ import annotations

import errno
import random
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

FAULT_KINDS = ("enospc", "eio", "torn", "latency", "crash", "skew")

_ERRNO = {"enospc": errno.ENOSPC, "eio": errno.EIO}


class ChaosCrash(RuntimeError):
    """An injected worker crash (``kind="crash"`` fault)."""


@dataclass(frozen=True)
class FaultSpec:
    """One fault rule: where it strikes, what it does, when it fires.

    ``site`` is matched against the dotted site name consulted at each
    fault point: exact match, a ``"prefix.*"`` wildcard, or ``"*"``
    (every site).  ``at`` lists 1-based call numbers *of that site*
    that fire; with ``at=None``, ``rate`` is the seeded per-call firing
    probability (``rate=1.0`` fires always).  ``times`` caps the total
    firings of this spec (None = unlimited).
    """

    site: str
    kind: str
    at: Optional[Tuple[int, ...]] = None
    rate: float = 1.0
    times: Optional[int] = None
    delay: float = 0.0
    skew: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; one of {FAULT_KINDS}")
        if self.at is not None:
            object.__setattr__(self, "at",
                               tuple(sorted(int(n) for n in self.at)))
            if any(n < 1 for n in self.at):
                raise ValueError("at= call numbers are 1-based")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")

    def matches(self, site: str) -> bool:
        if self.site == "*" or self.site == site:
            return True
        if self.site.endswith(".*"):
            return site.startswith(self.site[:-1])
        return False

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse the CLI form ``SITE:KIND[:k=v[,k=v...]]``.

        Examples: ``store.fsync:enospc``, ``ledger.write:torn:at=2``,
        ``worker.run:crash:at=1,2``, ``store.*:latency:delay=0.1``,
        ``upload.write:eio:rate=0.5,times=3``.
        """
        parts = text.split(":", 2)
        if len(parts) < 2 or not parts[0] or not parts[1]:
            raise ValueError(
                f"malformed fault spec {text!r}; expected SITE:KIND[:k=v,...]")
        site, kind = parts[0], parts[1]
        fields: Dict[str, object] = {}
        if len(parts) == 3 and parts[2]:
            for item in parts[2].split(","):
                key, _, value = item.partition("=")
                key = key.strip()
                if key == "at":
                    # at= may repeat: at=1,at=2 or at=1 (one call number
                    # per item; commas separate k=v items).
                    existing = fields.get("at") or ()
                    fields["at"] = tuple(existing) + (int(value),)  # type: ignore[arg-type]
                elif key in ("rate", "delay", "skew"):
                    fields[key] = float(value)
                elif key == "times":
                    fields[key] = int(value)
                else:
                    raise ValueError(
                        f"unknown fault spec field {key!r} in {text!r}")
        return cls(site=site, kind=kind, **fields)  # type: ignore[arg-type]


@dataclass(frozen=True)
class FaultEvent:
    """One fault that actually fired (for test assertions and stats)."""

    site: str
    kind: str
    call: int  #: 1-based call number of the site when it fired


@dataclass
class FaultPlan:
    """A swappable schedule of deterministic fault injections.

    Thread-safe: serve worker threads and the HTTP executor consult one
    shared plan.  ``specs`` may be :class:`FaultSpec` instances or their
    ``SITE:KIND[:k=v,...]`` string form (parsed on construction).
    """

    specs: Sequence[Union[FaultSpec, str]] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        self.specs = tuple(
            FaultSpec.parse(s) if isinstance(s, str) else s
            for s in self.specs)
        self._rng = random.Random(self.seed)
        self._lock = threading.Lock()
        self._calls: Dict[str, int] = {}
        self._fired: Dict[int, int] = {}  # spec index -> times fired
        self.events: List[FaultEvent] = []
        self._skew = 0.0

    # ------------------------------------------------------------------
    # Fault points
    # ------------------------------------------------------------------
    def check(self, site: str) -> Optional[FaultSpec]:
        """Count one call of ``site``; return the spec that fires, if any.

        Pure decision — no side effect beyond the counters and the
        event log.  Use :meth:`trip` to also *apply* the fault.
        """
        with self._lock:
            call = self._calls.get(site, 0) + 1
            self._calls[site] = call
            for index, spec in enumerate(self.specs):
                if not spec.matches(site):
                    continue
                fired = self._fired.get(index, 0)
                if spec.times is not None and fired >= spec.times:
                    continue
                if spec.at is not None:
                    if call not in spec.at:
                        continue
                elif spec.rate < 1.0 and self._rng.random() >= spec.rate:
                    continue
                self._fired[index] = fired + 1
                self.events.append(FaultEvent(site, spec.kind, call))
                if spec.kind == "skew":
                    self._skew += spec.skew
                return spec
            return None

    def trip(self, site: str) -> Optional[FaultSpec]:
        """Consult ``site`` and apply its fault, if one fires.

        ``enospc``/``eio`` raise ``OSError``; ``crash`` raises
        :class:`ChaosCrash`; ``latency`` sleeps ``delay`` then returns
        the spec; ``torn`` and ``skew`` return the spec for the caller
        to interpret (partial write; skew already accumulated).
        Returns ``None`` when nothing fired.
        """
        spec = self.check(site)
        if spec is None:
            return None
        if spec.kind in _ERRNO:
            code = _ERRNO[spec.kind]
            raise OSError(code, f"chaos: injected {spec.kind} at {site} "
                                f"(call {self._calls[site]})")
        if spec.kind == "crash":
            raise ChaosCrash(f"chaos: injected crash at {site} "
                             f"(call {self._calls[site]})")
        if spec.kind == "latency" and spec.delay > 0:
            time.sleep(spec.delay)
        return spec

    # ------------------------------------------------------------------
    # Derived seams
    # ------------------------------------------------------------------
    def fs(self, scope: str):
        """A :class:`~repro.chaos.fs.ChaosFs` consulting ``scope.*`` sites."""
        from repro.chaos.fs import ChaosFs

        return ChaosFs(self, scope)

    def clock(self) -> float:
        """Monotonic seconds plus any accumulated ``skew`` faults."""
        with self._lock:
            skew = self._skew
        return time.monotonic() + skew  # repro-lint: disable=DET001 reason=fault-injection clock seam; test scheduling only, never keyed or cached

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def calls(self, site: str) -> int:
        """How many times ``site`` has been consulted."""
        with self._lock:
            return self._calls.get(site, 0)

    def fired(self, site: Optional[str] = None) -> int:
        """Total faults fired (at ``site``, or anywhere)."""
        with self._lock:
            if site is None:
                return len(self.events)
            return sum(1 for e in self.events if e.site == site)

    def summary(self) -> dict:
        """Counters for ``/v1/stats`` and test assertions."""
        with self._lock:
            return {
                "specs": len(self.specs),
                "seed": self.seed,
                "fired": len(self.events),
                "by_site": dict(
                    sorted(
                        {
                            e.site: sum(1 for x in self.events
                                        if x.site == e.site)
                            for e in self.events
                        }.items())),
            }
