"""repro.chaos — deterministic fault injection for the service stack.

See :mod:`repro.chaos.plan` for the fault model and
:mod:`repro.chaos.fs` for the filesystem ops seam.
"""

from repro.chaos.fs import REAL_FS, ChaosFs, FsOps
from repro.chaos.plan import (
    FAULT_KINDS,
    ChaosCrash,
    FaultEvent,
    FaultPlan,
    FaultSpec,
)

__all__ = [
    "FAULT_KINDS",
    "REAL_FS",
    "ChaosCrash",
    "ChaosFs",
    "FaultEvent",
    "FaultPlan",
    "FaultSpec",
    "FsOps",
]
